//! Axis-aligned bounding boxes and the `Dmin` distance of Definition 1.
//!
//! Bounding boxes are used by Lemma 2 of the paper to prune whole groups of
//! simplified line segments before their pairwise distances are examined.

use super::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned minimum bounding rectangle in the 2-D spatial domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Corner with the smallest coordinates.
    pub min: Point,
    /// Corner with the largest coordinates.
    pub max: Point,
}

impl BoundingBox {
    /// Creates a bounding box from two opposite corners, normalising the
    /// coordinate order so that `min <= max` component-wise.
    pub fn new(a: Point, b: Point) -> Self {
        BoundingBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates the minimum bounding box of a set of points. Returns `None`
    /// for an empty iterator.
    pub fn from_points<I>(points: I) -> Option<Self>
    where
        I: IntoIterator<Item = Point>,
    {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut bbox = BoundingBox {
            min: first,
            max: first,
        };
        for p in iter {
            bbox.expand_to(&p);
        }
        Some(bbox)
    }

    /// A degenerate box covering a single point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        BoundingBox { min: p, max: p }
    }

    /// Width (x extent) of the box.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent) of the box.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the box.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point of the box.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }

    /// Grows the box in place so that it contains `p`.
    pub fn expand_to(&mut self, p: &Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Returns the smallest box containing both `self` and `other`.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        BoundingBox {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Returns a box enlarged by `margin` on every side. A negative margin
    /// shrinks the box (possibly producing an empty box, which callers should
    /// guard against).
    pub fn expanded(&self, margin: f64) -> BoundingBox {
        BoundingBox {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Returns `true` when `p` lies inside or on the border of the box.
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` when the two boxes share at least one point.
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// `Dmin(B_u, B_v)`: the minimum distance between any pair of points
    /// belonging to the two boxes (Definition 1). Zero when they intersect.
    pub fn min_distance(&self, other: &BoundingBox) -> f64 {
        let dx = if other.min.x > self.max.x {
            other.min.x - self.max.x
        } else if self.min.x > other.max.x {
            self.min.x - other.max.x
        } else {
            0.0
        };
        let dy = if other.min.y > self.max.y {
            other.min.y - self.max.y
        } else if self.min.y > other.max.y {
            self.min.y - other.max.y
        } else {
            0.0
        };
        (dx * dx + dy * dy).sqrt()
    }

    /// Minimum distance from a point to the box (zero when inside).
    pub fn min_distance_to_point(&self, p: &Point) -> f64 {
        self.min_distance(&BoundingBox::from_point(*p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_normalises_corners() {
        let b = BoundingBox::new(Point::new(5.0, -1.0), Point::new(-2.0, 3.0));
        assert_eq!(b.min, Point::new(-2.0, -1.0));
        assert_eq!(b.max, Point::new(5.0, 3.0));
        assert_eq!(b.width(), 7.0);
        assert_eq!(b.height(), 4.0);
        assert_eq!(b.area(), 28.0);
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(BoundingBox::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn from_points_covers_all() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, -2.0),
            Point::new(-1.0, 5.0),
        ];
        let b = BoundingBox::from_points(pts.clone()).unwrap();
        for p in &pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Point::new(-1.0, -2.0));
        assert_eq!(b.max, Point::new(3.0, 5.0));
    }

    #[test]
    fn min_distance_overlapping_is_zero() {
        let a = BoundingBox::new(Point::new(0.0, 0.0), Point::new(5.0, 5.0));
        let b = BoundingBox::new(Point::new(3.0, 3.0), Point::new(8.0, 8.0));
        assert!(a.intersects(&b));
        assert_eq!(a.min_distance(&b), 0.0);
    }

    #[test]
    fn min_distance_horizontally_separated() {
        let a = BoundingBox::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = BoundingBox::new(Point::new(5.0, 0.0), Point::new(7.0, 2.0));
        assert_eq!(a.min_distance(&b), 3.0);
    }

    #[test]
    fn min_distance_diagonally_separated() {
        let a = BoundingBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = BoundingBox::new(Point::new(4.0, 5.0), Point::new(6.0, 7.0));
        assert_eq!(a.min_distance(&b), 5.0);
    }

    #[test]
    fn union_contains_both() {
        let a = BoundingBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = BoundingBox::new(Point::new(4.0, -2.0), Point::new(5.0, 3.0));
        let u = a.union(&b);
        assert!(u.contains(&a.min) && u.contains(&a.max));
        assert!(u.contains(&b.min) && u.contains(&b.max));
    }

    #[test]
    fn expanded_grows_every_side() {
        let a = BoundingBox::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let e = a.expanded(1.5);
        assert_eq!(e.min, Point::new(-1.5, -1.5));
        assert_eq!(e.max, Point::new(3.5, 3.5));
    }

    #[test]
    fn point_distance_inside_is_zero() {
        let a = BoundingBox::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        assert_eq!(a.min_distance_to_point(&Point::new(2.0, 2.0)), 0.0);
        assert_eq!(a.min_distance_to_point(&Point::new(4.0, 7.0)), 3.0);
    }

    fn coord() -> impl Strategy<Value = f64> {
        -1000.0f64..1000.0
    }

    proptest! {
        #[test]
        fn min_distance_is_symmetric(a1 in coord(), a2 in coord(), a3 in coord(), a4 in coord(),
                                     b1 in coord(), b2 in coord(), b3 in coord(), b4 in coord()) {
            let a = BoundingBox::new(Point::new(a1, a2), Point::new(a3, a4));
            let b = BoundingBox::new(Point::new(b1, b2), Point::new(b3, b4));
            prop_assert!((a.min_distance(&b) - b.min_distance(&a)).abs() < 1e-9);
        }

        #[test]
        fn min_distance_lower_bounds_contained_point_distances(
            a1 in coord(), a2 in coord(), a3 in coord(), a4 in coord(),
            b1 in coord(), b2 in coord(), b3 in coord(), b4 in coord(),
            s in 0.0f64..1.0, t in 0.0f64..1.0, u in 0.0f64..1.0, v in 0.0f64..1.0) {
            // Dmin(Bu, Bv) <= D(p, q) for every p in Bu, q in Bv.
            let a = BoundingBox::new(Point::new(a1, a2), Point::new(a3, a4));
            let b = BoundingBox::new(Point::new(b1, b2), Point::new(b3, b4));
            let p = Point::new(a.min.x + s * a.width(), a.min.y + t * a.height());
            let q = Point::new(b.min.x + u * b.width(), b.min.y + v * b.height());
            prop_assert!(a.min_distance(&b) <= p.distance(&q) + 1e-9);
        }

        #[test]
        fn union_distance_never_exceeds_parts(
            a1 in coord(), a2 in coord(), a3 in coord(), a4 in coord(),
            b1 in coord(), b2 in coord(), b3 in coord(), b4 in coord(),
            c1 in coord(), c2 in coord(), c3 in coord(), c4 in coord()) {
            // Dmin to a union is a lower bound of Dmin to either constituent —
            // the monotonicity Lemma 2 relies on.
            let a = BoundingBox::new(Point::new(a1, a2), Point::new(a3, a4));
            let b = BoundingBox::new(Point::new(b1, b2), Point::new(b3, b4));
            let probe = BoundingBox::new(Point::new(c1, c2), Point::new(c3, c4));
            let u = a.union(&b);
            prop_assert!(probe.min_distance(&u) <= probe.min_distance(&a) + 1e-9);
            prop_assert!(probe.min_distance(&u) <= probe.min_distance(&b) + 1e-9);
        }
    }
}
