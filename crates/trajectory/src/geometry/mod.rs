//! Geometry primitives used throughout the convoy-discovery stack.
//!
//! The paper's Definition 1 introduces four distance functions:
//!
//! * `D(p_u, p_v)` — Euclidean distance between two points
//!   ([`point::Point::distance`]);
//! * `DPL(p, l)` — shortest distance from a point to a line segment
//!   ([`segment::Segment::distance_to_point`]);
//! * `DLL(l_u, l_v)` — shortest distance between two line segments
//!   ([`segment::Segment::distance_to_segment`]);
//! * `Dmin(B_u, B_v)` — minimum distance between two boxes
//!   ([`bbox::BoundingBox::min_distance`]).
//!
//! Section 6.2 additionally uses the closest-point-of-approach distance `D*`
//! between two *timestamped* segments ([`segment::TimedSegment::cpa_distance`]).

pub mod bbox;
pub mod point;
pub mod segment;

pub use bbox::BoundingBox;
pub use point::Point;
pub use segment::{Segment, TimedSegment};
