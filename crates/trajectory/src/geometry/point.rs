//! 2-D points and the Euclidean distance `D` of Definition 1.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Sub};

/// A point (or free vector) in the 2-D spatial domain.
///
/// Coordinates are `f64`. The type is `Copy` and all operations are
/// allocation-free; it is used both as a position and as a displacement
/// vector (e.g. in the closest-point-of-approach computation).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a new point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance `D(self, other)` (Definition 1).
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance. Cheaper than [`Point::distance`] and
    /// sufficient for comparisons against a squared threshold.
    #[inline]
    pub fn distance_squared(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Dot product, treating both points as vectors.
    #[inline]
    pub fn dot(&self, other: &Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Euclidean norm, treating the point as a vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_squared(&self) -> f64 {
        self.dot(self)
    }

    /// Linear interpolation between `self` (at `ratio = 0`) and `other`
    /// (at `ratio = 1`). `ratio` is *not* clamped; callers that need clamping
    /// (e.g. segment parameterisation) must clamp themselves.
    #[inline]
    pub fn lerp(&self, other: &Point, ratio: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * ratio,
            y: self.y + (other.y - self.y) * ratio,
        }
    }

    /// Returns `true` when both coordinates are finite (neither NaN nor ±∞).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        self.lerp(other, 0.5)
    }
}

impl Add for Point {
    type Output = Point;

    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;

    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;

    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_squared(&b), 25.0);
    }

    #[test]
    fn distance_is_zero_for_identical_points() {
        let p = Point::new(-2.5, 7.25);
        assert_eq!(p.distance(&p), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 10.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(5.0, 5.0));
        assert_eq!(a.midpoint(&b), Point::new(5.0, 5.0));
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a.dot(&b), 1.0);
    }

    #[test]
    fn norm_matches_distance_from_origin() {
        let p = Point::new(3.0, 4.0);
        assert_eq!(p.norm(), 5.0);
        assert_eq!(p.norm_squared(), 25.0);
        assert_eq!(p.norm(), Point::ORIGIN.distance(&p));
    }

    #[test]
    fn finiteness_detection() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn conversion_from_tuple() {
        let p: Point = (1.5, -2.5).into();
        assert_eq!(p, Point::new(1.5, -2.5));
    }

    fn finite_coord() -> impl Strategy<Value = f64> {
        -1.0e6..1.0e6
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(ax in finite_coord(), ay in finite_coord(),
                                 bx in finite_coord(), by in finite_coord()) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9);
        }

        #[test]
        fn distance_is_nonnegative(ax in finite_coord(), ay in finite_coord(),
                                   bx in finite_coord(), by in finite_coord()) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!(a.distance(&b) >= 0.0);
        }

        #[test]
        fn triangle_inequality(ax in finite_coord(), ay in finite_coord(),
                               bx in finite_coord(), by in finite_coord(),
                               cx in finite_coord(), cy in finite_coord()) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-6);
        }

        #[test]
        fn lerp_stays_on_segment(ax in finite_coord(), ay in finite_coord(),
                                 bx in finite_coord(), by in finite_coord(),
                                 r in 0.0f64..1.0) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let p = a.lerp(&b, r);
            // The interpolated point must never be farther from either endpoint
            // than the endpoints are from each other.
            let ab = a.distance(&b);
            prop_assert!(a.distance(&p) <= ab + 1e-6);
            prop_assert!(b.distance(&p) <= ab + 1e-6);
        }
    }
}
