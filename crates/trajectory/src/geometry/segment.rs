//! Line segments, the distances `DPL` and `DLL` of Definition 1, and the
//! timestamped segments with closest-point-of-approach distance `D*` used by
//! CuTS* (Section 6.2 of the paper).

use super::bbox::BoundingBox;
use super::point::Point;
use crate::time::TimeInterval;
use serde::{Deserialize, Serialize};

/// A purely spatial line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub start: Point,
    /// End point.
    pub end: Point,
}

impl Segment {
    /// Creates a segment from `start` to `end`. Degenerate segments
    /// (`start == end`) are allowed and behave like points.
    #[inline]
    pub const fn new(start: Point, end: Point) -> Self {
        Segment { start, end }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.start.distance(&self.end)
    }

    /// Returns `true` when both endpoints coincide.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.start == self.end
    }

    /// The point on the segment at parameter `t ∈ [0, 1]` (clamped).
    #[inline]
    pub fn point_at(&self, t: f64) -> Point {
        let t = t.clamp(0.0, 1.0);
        self.start.lerp(&self.end, t)
    }

    /// Parameter `t ∈ [0, 1]` of the point on the segment closest to `p`.
    pub fn closest_point_parameter(&self, p: &Point) -> f64 {
        // lint: allow(checked-time-arithmetic) — Point vector subtraction (f64 coordinates), not ticks
        let d = self.end - self.start;
        let len_sq = d.norm_squared();
        if len_sq == 0.0 {
            return 0.0;
        }
        // lint: allow(checked-time-arithmetic) — Point vector subtraction (f64 coordinates), not ticks
        let t = (*p - self.start).dot(&d) / len_sq;
        t.clamp(0.0, 1.0)
    }

    /// The point on the segment closest to `p`.
    #[inline]
    pub fn closest_point(&self, p: &Point) -> Point {
        self.point_at(self.closest_point_parameter(p))
    }

    /// `DPL(p, l)`: the shortest Euclidean distance from point `p` to any
    /// point on this segment (Definition 1).
    #[inline]
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Perpendicular distance from `p` to the *infinite line* through this
    /// segment. For a degenerate segment this falls back to the point
    /// distance. This is the distance used by the classic Douglas–Peucker
    /// algorithm (which measures against the line, not the segment).
    pub fn perpendicular_distance(&self, p: &Point) -> f64 {
        // lint: allow(checked-time-arithmetic) — Point vector subtraction (f64 coordinates), not ticks
        let d = self.end - self.start;
        let len = d.norm();
        if len == 0.0 {
            return self.start.distance(p);
        }
        // lint: allow(checked-time-arithmetic) — Point vector subtraction (f64 coordinates), not ticks
        let v = *p - self.start;
        // |cross product| / |d| gives the distance to the infinite line.
        (d.x * v.y - d.y * v.x).abs() / len
    }

    /// `DLL(l_u, l_v)`: the shortest Euclidean distance between any two points
    /// on the two segments (Definition 1). Returns `0` when the segments
    /// intersect.
    pub fn distance_to_segment(&self, other: &Segment) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        // When the segments do not intersect, the minimum distance is attained
        // at an endpoint of one of the segments.
        let d1 = self.distance_to_point(&other.start);
        let d2 = self.distance_to_point(&other.end);
        let d3 = other.distance_to_point(&self.start);
        let d4 = other.distance_to_point(&self.end);
        d1.min(d2).min(d3).min(d4)
    }

    /// Returns `true` when the two segments intersect (including touching at
    /// endpoints and collinear overlap).
    pub fn intersects(&self, other: &Segment) -> bool {
        fn orientation(a: &Point, b: &Point, c: &Point) -> i8 {
            let v = (b.y - a.y) * (c.x - b.x) - (b.x - a.x) * (c.y - b.y);
            if v.abs() < 1e-12 {
                0
            } else if v > 0.0 {
                1
            } else {
                -1
            }
        }
        fn on_segment(a: &Point, b: &Point, c: &Point) -> bool {
            b.x <= a.x.max(c.x) + 1e-12
                && b.x + 1e-12 >= a.x.min(c.x)
                && b.y <= a.y.max(c.y) + 1e-12
                && b.y + 1e-12 >= a.y.min(c.y)
        }

        let (p1, q1) = (&self.start, &self.end);
        let (p2, q2) = (&other.start, &other.end);
        let o1 = orientation(p1, q1, p2);
        let o2 = orientation(p1, q1, q2);
        let o3 = orientation(p2, q2, p1);
        let o4 = orientation(p2, q2, q1);

        if o1 != o2 && o3 != o4 {
            return true;
        }
        (o1 == 0 && on_segment(p1, p2, q1))
            || (o2 == 0 && on_segment(p1, q2, q1))
            || (o3 == 0 && on_segment(p2, p1, q2))
            || (o4 == 0 && on_segment(p2, q1, q2))
    }

    /// The minimum axis-aligned bounding box `B(l)` of the segment.
    pub fn bounding_box(&self) -> BoundingBox {
        // lint: allow(no-unwrap-in-lib) — a two-point array is statically non-empty
        BoundingBox::from_points([self.start, self.end]).expect("two points are never empty")
    }
}

/// A line segment of a **simplified trajectory**: spatial endpoints plus the
/// time interval `l'.τ` they span (Section 5.2).
///
/// The location at a time `t` inside the interval is obtained by the time-ratio
/// parameterisation of Section 6.2:
/// `l'(t) = p_u + (t - u)/(v - u) · (p_v - p_u)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedSegment {
    /// Spatial endpoints.
    pub segment: Segment,
    /// Time interval `[start, end]` covered by the segment.
    pub interval: TimeInterval,
}

impl TimedSegment {
    /// Creates a timed segment.
    #[inline]
    pub const fn new(segment: Segment, interval: TimeInterval) -> Self {
        TimedSegment { segment, interval }
    }

    /// The time-ratio location of the segment at time `t` (Section 6.2).
    ///
    /// `t` is clamped to the segment's interval; for a zero-length interval
    /// the start point is returned.
    pub fn location_at(&self, t: i64) -> Point {
        let (u, v) = (self.interval.start, self.interval.end);
        if v == u {
            return self.segment.start;
        }
        let t = t.clamp(u, v);
        // Saturating: identical to bare `-` unless the interval spans more
        // than the i64 range, where bare subtraction would wrap.
        let ratio = t.saturating_sub(u) as f64 / v.saturating_sub(u) as f64;
        self.segment.start.lerp(&self.segment.end, ratio)
    }

    /// The velocity vector (displacement per unit time) of the segment.
    /// Zero for a zero-length time interval.
    pub fn velocity(&self) -> Point {
        let dt = self.interval.duration() as f64;
        if dt == 0.0 {
            return Point::ORIGIN;
        }
        // lint: allow(checked-time-arithmetic) — Point vector subtraction (f64 coordinates), not ticks
        (self.segment.end - self.segment.start) * (1.0 / dt)
    }

    /// The closest-point-of-approach time `t_CPA` between `self` and `other`,
    /// restricted to their common time interval. Returns `None` when the time
    /// intervals do not intersect.
    ///
    /// The CPA time minimises `|self(t) - other(t)|` over the common interval
    /// (Section 6.2 and [Arumugam & Jermaine, ICDE 2006]).
    pub fn cpa_time(&self, other: &TimedSegment) -> Option<f64> {
        let common = self.interval.intersection(&other.interval)?;
        let p0 = self.location_at(common.start);
        let q0 = other.location_at(common.start);
        let dv = self.velocity() - other.velocity();
        let dv2 = dv.norm_squared();
        let lo = common.start as f64;
        let hi = common.end as f64;
        if dv2 == 0.0 {
            // Relative velocity is zero: distance is constant over the common
            // interval, any time attains the minimum.
            return Some(lo);
        }
        let w0 = p0 - q0;
        let t_rel = -w0.dot(&dv) / dv2;
        Some((lo + t_rel).clamp(lo, hi))
    }

    /// `D*(l'_1, l'_2)`: the distance between the two segments at their CPA
    /// time within their common time interval (Section 6.2). Returns
    /// `f64::INFINITY` when the time intervals do not intersect, exactly as
    /// the paper prescribes.
    pub fn cpa_distance(&self, other: &TimedSegment) -> f64 {
        match self.cpa_time(other) {
            None => f64::INFINITY,
            Some(t) => {
                // Evaluate at the (possibly fractional) CPA time using the
                // time-ratio parameterisation directly.
                let a = self.location_at_f64(t);
                let b = other.location_at_f64(t);
                a.distance(&b)
            }
        }
    }

    /// Time-ratio location at a fractional time, used for CPA evaluation.
    pub fn location_at_f64(&self, t: f64) -> Point {
        let (u, v) = (self.interval.start as f64, self.interval.end as f64);
        if v == u {
            return self.segment.start;
        }
        let t = t.clamp(u, v);
        // lint: allow(checked-time-arithmetic) — f64 CPA arithmetic, wrap-free by construction
        let ratio = (t - u) / (v - u);
        self.segment.start.lerp(&self.segment.end, ratio)
    }

    /// Minimum bounding box of the spatial extent of this segment.
    #[inline]
    pub fn bounding_box(&self) -> BoundingBox {
        self.segment.bounding_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seg(x1: f64, y1: f64, x2: f64, y2: f64) -> Segment {
        Segment::new(Point::new(x1, y1), Point::new(x2, y2))
    }

    #[test]
    fn point_distance_to_horizontal_segment() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.distance_to_point(&Point::new(5.0, 3.0)), 3.0);
        // Beyond the end: distance to the endpoint, not the infinite line.
        assert_eq!(s.distance_to_point(&Point::new(13.0, 4.0)), 5.0);
        // On the segment.
        assert_eq!(s.distance_to_point(&Point::new(2.0, 0.0)), 0.0);
    }

    #[test]
    fn perpendicular_distance_ignores_segment_extent() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        // Perpendicular distance projects onto the infinite line.
        assert_eq!(s.perpendicular_distance(&Point::new(13.0, 4.0)), 4.0);
        assert_eq!(s.perpendicular_distance(&Point::new(5.0, -2.0)), 2.0);
    }

    #[test]
    fn degenerate_segment_behaves_like_point() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert!(s.is_degenerate());
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.distance_to_point(&Point::new(4.0, 5.0)), 5.0);
        assert_eq!(s.perpendicular_distance(&Point::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn segment_segment_distance_parallel() {
        let a = seg(0.0, 0.0, 10.0, 0.0);
        let b = seg(0.0, 4.0, 10.0, 4.0);
        assert_eq!(a.distance_to_segment(&b), 4.0);
        assert_eq!(b.distance_to_segment(&a), 4.0);
    }

    #[test]
    fn segment_segment_distance_intersecting_is_zero() {
        let a = seg(0.0, 0.0, 10.0, 10.0);
        let b = seg(0.0, 10.0, 10.0, 0.0);
        assert!(a.intersects(&b));
        assert_eq!(a.distance_to_segment(&b), 0.0);
    }

    #[test]
    fn segment_segment_distance_skew() {
        let a = seg(0.0, 0.0, 1.0, 0.0);
        let b = seg(3.0, 4.0, 3.0, 10.0);
        assert_eq!(
            a.distance_to_segment(&b),
            Point::new(1.0, 0.0).distance(&Point::new(3.0, 4.0))
        );
    }

    #[test]
    fn intersection_detection_touching_endpoints() {
        let a = seg(0.0, 0.0, 1.0, 1.0);
        let b = seg(1.0, 1.0, 2.0, 0.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn intersection_detection_collinear_overlap() {
        let a = seg(0.0, 0.0, 5.0, 0.0);
        let b = seg(3.0, 0.0, 8.0, 0.0);
        assert!(a.intersects(&b));
        let c = seg(6.0, 0.0, 8.0, 0.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn closest_point_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(
            s.closest_point(&Point::new(-5.0, 2.0)),
            Point::new(0.0, 0.0)
        );
        assert_eq!(
            s.closest_point(&Point::new(50.0, 2.0)),
            Point::new(10.0, 0.0)
        );
    }

    #[test]
    fn bounding_box_covers_both_endpoints() {
        let s = seg(3.0, -1.0, -2.0, 5.0);
        let b = s.bounding_box();
        assert_eq!(b.min, Point::new(-2.0, -1.0));
        assert_eq!(b.max, Point::new(3.0, 5.0));
    }

    // ---- TimedSegment ----

    fn tseg(x1: f64, y1: f64, x2: f64, y2: f64, t1: i64, t2: i64) -> TimedSegment {
        TimedSegment::new(seg(x1, y1, x2, y2), TimeInterval::new(t1, t2))
    }

    #[test]
    fn timed_location_interpolates_by_time_ratio() {
        let s = tseg(0.0, 0.0, 10.0, 0.0, 0, 10);
        assert_eq!(s.location_at(0), Point::new(0.0, 0.0));
        assert_eq!(s.location_at(5), Point::new(5.0, 0.0));
        assert_eq!(s.location_at(10), Point::new(10.0, 0.0));
        // Clamped outside the interval.
        assert_eq!(s.location_at(20), Point::new(10.0, 0.0));
    }

    #[test]
    fn timed_location_zero_length_interval() {
        let s = tseg(1.0, 2.0, 3.0, 4.0, 5, 5);
        assert_eq!(s.location_at(5), Point::new(1.0, 2.0));
        assert_eq!(s.velocity(), Point::ORIGIN);
    }

    #[test]
    fn cpa_distance_disjoint_intervals_is_infinite() {
        let a = tseg(0.0, 0.0, 1.0, 0.0, 0, 5);
        let b = tseg(0.0, 0.0, 1.0, 0.0, 6, 10);
        assert_eq!(a.cpa_distance(&b), f64::INFINITY);
    }

    #[test]
    fn cpa_distance_identical_motion_is_zero() {
        let a = tseg(0.0, 0.0, 10.0, 10.0, 0, 10);
        let b = tseg(0.0, 0.0, 10.0, 10.0, 0, 10);
        assert!(a.cpa_distance(&b).abs() < 1e-12);
    }

    #[test]
    fn cpa_distance_crossing_objects() {
        // Two objects crossing paths: one moves east, the other north, both
        // passing through (5, 5) at t=5. CPA distance should be ~0.
        let a = tseg(0.0, 5.0, 10.0, 5.0, 0, 10);
        let b = tseg(5.0, 0.0, 5.0, 10.0, 0, 10);
        assert!(a.cpa_distance(&b) < 1e-9);
    }

    #[test]
    fn cpa_distance_parallel_constant_gap() {
        let a = tseg(0.0, 0.0, 10.0, 0.0, 0, 10);
        let b = tseg(0.0, 3.0, 10.0, 3.0, 0, 10);
        assert!((a.cpa_distance(&b) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cpa_is_at_least_the_spatial_segment_distance() {
        // The paper's key observation: D* >= DLL, because D* restricts the
        // comparison to time-synchronised positions.
        let a = tseg(0.0, 0.0, 10.0, 0.0, 0, 10);
        let b = tseg(10.0, 1.0, 0.0, 1.0, 0, 10); // moving the opposite way
        let dll = a.segment.distance_to_segment(&b.segment);
        let dstar = a.cpa_distance(&b);
        assert!(dstar + 1e-9 >= dll, "D*={dstar} must be >= DLL={dll}");
    }

    #[test]
    fn cpa_time_partial_overlap_clamps_to_common_interval() {
        let a = tseg(0.0, 0.0, 10.0, 0.0, 0, 10);
        let b = tseg(0.0, 5.0, 0.0, 0.0, 8, 13);
        let t = a.cpa_time(&b).unwrap();
        assert!(
            (8.0..=10.0).contains(&t),
            "CPA time {t} outside common interval"
        );
    }

    proptest! {
        #[test]
        fn dll_is_symmetric(ax in -100.0f64..100.0, ay in -100.0f64..100.0,
                            bx in -100.0f64..100.0, by in -100.0f64..100.0,
                            cx in -100.0f64..100.0, cy in -100.0f64..100.0,
                            dx in -100.0f64..100.0, dy in -100.0f64..100.0) {
            let s1 = seg(ax, ay, bx, by);
            let s2 = seg(cx, cy, dx, dy);
            prop_assert!((s1.distance_to_segment(&s2) - s2.distance_to_segment(&s1)).abs() < 1e-9);
        }

        #[test]
        fn dll_lower_bounds_endpoint_distances(ax in -100.0f64..100.0, ay in -100.0f64..100.0,
                                               bx in -100.0f64..100.0, by in -100.0f64..100.0,
                                               cx in -100.0f64..100.0, cy in -100.0f64..100.0,
                                               dx in -100.0f64..100.0, dy in -100.0f64..100.0) {
            let s1 = seg(ax, ay, bx, by);
            let s2 = seg(cx, cy, dx, dy);
            let dll = s1.distance_to_segment(&s2);
            prop_assert!(dll <= s1.start.distance(&s2.start) + 1e-9);
            prop_assert!(dll <= s1.end.distance(&s2.end) + 1e-9);
        }

        #[test]
        fn dpl_lower_bounds_point_to_endpoint(ax in -100.0f64..100.0, ay in -100.0f64..100.0,
                                              bx in -100.0f64..100.0, by in -100.0f64..100.0,
                                              px in -100.0f64..100.0, py in -100.0f64..100.0) {
            let s = seg(ax, ay, bx, by);
            let p = Point::new(px, py);
            let d = s.distance_to_point(&p);
            prop_assert!(d <= p.distance(&s.start) + 1e-9);
            prop_assert!(d <= p.distance(&s.end) + 1e-9);
            // Perpendicular (infinite line) distance can never exceed the
            // segment distance.
            prop_assert!(s.perpendicular_distance(&p) <= d + 1e-9);
        }

        #[test]
        fn cpa_distance_dominates_dll(ax in -50.0f64..50.0, ay in -50.0f64..50.0,
                                      bx in -50.0f64..50.0, by in -50.0f64..50.0,
                                      cx in -50.0f64..50.0, cy in -50.0f64..50.0,
                                      dx in -50.0f64..50.0, dy in -50.0f64..50.0,
                                      start in 0i64..20, len in 1i64..20) {
            let a = TimedSegment::new(seg(ax, ay, bx, by), TimeInterval::new(start, start + len));
            let b = TimedSegment::new(seg(cx, cy, dx, dy), TimeInterval::new(start, start + len));
            let dll = a.segment.distance_to_segment(&b.segment);
            let dstar = a.cpa_distance(&b);
            prop_assert!(dstar + 1e-6 >= dll,
                "D* ({dstar}) must be at least DLL ({dll}) for overlapping intervals");
        }

        #[test]
        fn cpa_distance_is_attainable_synchronous_distance(
            ax in -50.0f64..50.0, ay in -50.0f64..50.0,
            bx in -50.0f64..50.0, by in -50.0f64..50.0,
            cx in -50.0f64..50.0, cy in -50.0f64..50.0,
            dx in -50.0f64..50.0, dy in -50.0f64..50.0,
            probe in 0u8..=10) {
            // D* is the minimum synchronous distance, so it can never exceed
            // the synchronous distance at any sampled time in the interval.
            let a = TimedSegment::new(seg(ax, ay, bx, by), TimeInterval::new(0, 10));
            let b = TimedSegment::new(seg(cx, cy, dx, dy), TimeInterval::new(0, 10));
            let dstar = a.cpa_distance(&b);
            let t = i64::from(probe);
            let sync = a.location_at(t).distance(&b.location_at(t));
            prop_assert!(dstar <= sync + 1e-6);
        }
    }
}
