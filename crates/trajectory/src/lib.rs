//! # `trajectory` — trajectory data model substrate
//!
//! This crate provides the data model underneath the convoy-discovery stack:
//!
//! * **Geometry primitives** ([`geometry`]): 2-D points, line segments,
//!   axis-aligned bounding boxes and the distance functions of the paper's
//!   Definition 1 (`D`, `DPL`, `DLL`, `Dmin`) plus the closest-point-of-approach
//!   distance `D*` used by CuTS*.
//! * **Time model** ([`time`]): discrete time points, closed time intervals
//!   `[start, end]`, and partitioning of a time domain into λ-length partitions.
//! * **Trajectories** ([`Trajectory`]): timestamped polylines with exact and
//!   interpolated location lookup, slicing and sub-trajectory extraction.
//! * **Trajectory database** ([`TrajectoryDatabase`]): a collection of
//!   trajectories keyed by object id, with snapshot extraction (the `Ot` sets
//!   used by snapshot clustering), optional virtual-point interpolation for
//!   missing samples, and dataset statistics matching Table 3 of the paper.
//! * **Snapshot sweep** ([`SnapshotSweep`]): a streaming cursor that yields
//!   every snapshot of a time window from one sorted pass over all samples,
//!   the extraction path the convoy engines use on their hot loop.
//!
//! The crate is deliberately free of any clustering or simplification logic so
//! that the substrates above it (`traj-simplify`, `traj-cluster`,
//! `convoy-core`) can be tested against a small, stable core.
//!
//! ## Example
//!
//! ```
//! use trajectory::{Trajectory, TrajectoryDatabase, TrajPoint, ObjectId};
//!
//! let mut db = TrajectoryDatabase::new();
//! let traj = Trajectory::from_points(vec![
//!     TrajPoint::new(0.0, 0.0, 0),
//!     TrajPoint::new(1.0, 1.0, 1),
//!     TrajPoint::new(2.0, 2.0, 2),
//! ]).unwrap();
//! db.insert(ObjectId(7), traj);
//!
//! // Exact sample at t=1, interpolated position at t between samples.
//! let o = db.get(ObjectId(7)).unwrap();
//! assert_eq!(o.location_at(1).unwrap().x, 1.0);
//! assert_eq!(db.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod database;
pub mod error;
pub mod feed;
pub mod geometry;
pub mod point;
pub mod source;
pub mod stats;
pub mod sweep;
pub mod time;
pub mod trajectory;

pub use builder::TrajectoryBuilder;
pub use database::{ObjectId, Snapshot, SnapshotEntry, SnapshotPolicy, TrajectoryDatabase};
pub use error::{Result, TrajectoryError};
pub use feed::{FeedError, FeedValidator, FeedValidatorSnapshot};
pub use geometry::bbox::BoundingBox;
pub use geometry::point::Point;
pub use geometry::segment::Segment;
pub use point::TrajPoint;
pub use source::{publish_scan_stats, ScanStats, TrajectorySource};
pub use stats::DatasetStats;
pub use sweep::SnapshotSweep;
pub use time::{TimeInterval, TimePartition, TimePoint};
pub use trajectory::Trajectory;
