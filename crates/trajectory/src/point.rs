//! Timestamped trajectory points `(x, y, t)`.

use crate::geometry::point::Point;
use crate::time::TimePoint;
use serde::{Deserialize, Serialize};

/// A timestamped location: the `p_j = (x_j, y_j, t_j)` of the paper's
/// trajectory model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajPoint {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
    /// Time point at which the location was sampled.
    pub t: TimePoint,
}

impl TrajPoint {
    /// Creates a new timestamped point.
    #[inline]
    pub const fn new(x: f64, y: f64, t: TimePoint) -> Self {
        TrajPoint { x, y, t }
    }

    /// The spatial component of the point.
    #[inline]
    pub const fn position(&self) -> Point {
        Point::new(self.x, self.y)
    }

    /// Euclidean distance between the spatial components of two samples
    /// (their timestamps are ignored).
    #[inline]
    pub fn spatial_distance(&self, other: &TrajPoint) -> f64 {
        self.position().distance(&other.position())
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Builds a timestamped point from a spatial position and a time.
    #[inline]
    pub fn from_position(p: Point, t: TimePoint) -> Self {
        TrajPoint::new(p.x, p.y, t)
    }

    /// The linearly interpolated *virtual point* (Section 4 of the paper)
    /// between two bracketing samples at time `t`.
    ///
    /// This is **the** virtual-point arithmetic of the whole stack:
    /// [`crate::Trajectory::location_at`], the [`crate::SnapshotSweep`]
    /// cursor and the streaming ingest buffers all call it, which is what
    /// makes their snapshots bit-identical to one another.
    ///
    /// Requires `before.t < t < after.t` (callers handle the exact-sample
    /// case themselves, so the division is always well defined).
    #[inline]
    pub fn interpolate(before: &TrajPoint, after: &TrajPoint, t: TimePoint) -> Point {
        debug_assert!(
            before.t < t && t < after.t,
            "t must lie strictly between the samples"
        );
        // Saturating keeps the ratio well defined even for sample gaps wider
        // than the i64 range (identical to bare `-` whenever no overflow).
        let ratio = t.saturating_sub(before.t) as f64 / after.t.saturating_sub(before.t) as f64;
        before.position().lerp(&after.position(), ratio)
    }
}

impl From<(f64, f64, TimePoint)> for TrajPoint {
    #[inline]
    fn from((x, y, t): (f64, f64, TimePoint)) -> Self {
        TrajPoint::new(x, y, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_projection() {
        let p = TrajPoint::new(1.0, 2.0, 5);
        assert_eq!(p.position(), Point::new(1.0, 2.0));
        assert_eq!(p.t, 5);
    }

    #[test]
    fn spatial_distance_ignores_time() {
        let a = TrajPoint::new(0.0, 0.0, 0);
        let b = TrajPoint::new(3.0, 4.0, 1000);
        assert_eq!(a.spatial_distance(&b), 5.0);
    }

    #[test]
    fn finite_check() {
        assert!(TrajPoint::new(0.0, 0.0, 0).is_finite());
        assert!(!TrajPoint::new(f64::NAN, 0.0, 0).is_finite());
    }

    #[test]
    fn tuple_conversion_and_from_position() {
        let p: TrajPoint = (1.0, -1.0, 3).into();
        assert_eq!(p, TrajPoint::new(1.0, -1.0, 3));
        assert_eq!(
            TrajPoint::from_position(Point::new(2.0, 3.0), 9),
            TrajPoint::new(2.0, 3.0, 9)
        );
    }
}
