//! Pluggable trajectory storage: the [`TrajectorySource`] trait.
//!
//! A *source* is anything that can materialise a [`TrajectoryDatabase`] —
//! a CSV file, the binary `.convoy` columnar container, eventually a remote
//! object store. Consumers (the discovery façade, the CLI, the benchmark
//! harness) program against this trait so every ingestion path gains new
//! backends for free, the same shape as versatiles' `container_reader`
//! layer: one trait, many on-disk formats behind a sniffing factory (the
//! factory lives in `traj-datasets`, next to the formats themselves).
//!
//! ## Windowed loads
//!
//! [`TrajectorySource::load_window`] returns the sub-database of samples
//! whose timestamp lies inside the window — exactly
//! [`TrajectoryDatabase::restrict`] applied to a full load. The contract is
//! deliberately sample-selecting, not interpolating: a windowed load never
//! reaches outside the window for bracketing samples, so a block-indexed
//! backend can skip every block disjoint from the window and still return a
//! database *identical* to `load()?.restrict(window)`. Discovery over a
//! window therefore interpolates only between samples inside it.

use crate::database::TrajectoryDatabase;
use crate::error::Result;
use crate::time::TimeInterval;
use convoy_obs::{Obs, Registry};

/// Read-side statistics of a source's most recent load.
///
/// Block-indexed backends report how much of the file a load actually
/// touched; flat backends (CSV) count as a single block. `records_read`
/// counts every sample the backend decoded, *including* duplicates the
/// database later collapsed — the difference between `records_read` and the
/// loaded database's total points is the duplicate-sample count `convoy
/// convert` reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Total data blocks in the source (1 for unblocked formats).
    pub blocks_total: usize,
    /// Blocks actually read and decoded by the last load.
    pub blocks_read: usize,
    /// Samples decoded by the last load, before deduplication.
    pub records_read: u64,
}

/// A readable trajectory storage backend.
///
/// Implementations take `&mut self` so they can reuse internal decode
/// buffers across loads and record [`ScanStats`].
pub trait TrajectorySource {
    /// Loads the entire database.
    fn load(&mut self) -> Result<TrajectoryDatabase>;

    /// Loads only the samples with `window.start <= t <= window.end`
    /// (see the module docs for the exact semantics). The default
    /// implementation loads everything and restricts; block-indexed
    /// backends override it to read only the touched blocks.
    fn load_window(&mut self, window: TimeInterval) -> Result<TrajectoryDatabase> {
        Ok(self.load()?.restrict(window))
    }

    /// Statistics of the most recent `load`/`load_window` call.
    fn scan_stats(&self) -> ScanStats;

    /// Short human-readable format name (`"csv"`, `"convoy"`).
    fn format_name(&self) -> &'static str;

    /// Attaches a recorder: subsequent loads record the `scan.*` I/O metrics
    /// (blocks read/pruned, records decoded, bytes scanned, decode time).
    /// Default: ignored, for backends without instrumentation.
    fn set_obs(&mut self, _obs: Obs) {}
}

/// Publishes a [`ScanStats`] into `registry` under the canonical `scan.*`
/// names — the typed-view half of the `--stats` rendering path. Store
/// semantics: the struct describes the *most recent* load, and the published
/// values overwrite whatever earlier loads recorded live.
pub fn publish_scan_stats(registry: &Registry, stats: &ScanStats) {
    registry.counter_store("scan.blocks_total", stats.blocks_total as u64);
    registry.counter_store("scan.blocks_read", stats.blocks_read as u64);
    registry.counter_store(
        "scan.blocks_pruned",
        stats.blocks_total.saturating_sub(stats.blocks_read) as u64,
    );
    registry.counter_store("scan.records_read", stats.records_read);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::ObjectId;
    use crate::trajectory::Trajectory;

    /// A trivial in-memory source exercising the default `load_window`.
    struct MemSource {
        db: TrajectoryDatabase,
        stats: ScanStats,
    }

    impl TrajectorySource for MemSource {
        fn load(&mut self) -> Result<TrajectoryDatabase> {
            self.stats = ScanStats {
                blocks_total: 1,
                blocks_read: 1,
                records_read: self.db.total_points() as u64,
            };
            Ok(self.db.clone())
        }
        fn scan_stats(&self) -> ScanStats {
            self.stats
        }
        fn format_name(&self) -> &'static str {
            "mem"
        }
    }

    #[test]
    fn default_load_window_equals_restrict() {
        let mut db = TrajectoryDatabase::new();
        db.insert(
            ObjectId(1),
            Trajectory::from_tuples([(0.0, 0.0, 0), (1.0, 0.0, 5), (2.0, 0.0, 9)]).unwrap(),
        );
        db.insert(
            ObjectId(2),
            Trajectory::from_tuples([(5.0, 5.0, 7)]).unwrap(),
        );
        let mut source = MemSource {
            db: db.clone(),
            stats: ScanStats::default(),
        };
        let window = TimeInterval::new(5, 8);
        let windowed = source.load_window(window).unwrap();
        assert_eq!(windowed, db.restrict(window));
        assert_eq!(windowed.len(), 2);
        assert_eq!(windowed.get(ObjectId(1)).unwrap().len(), 1);
        assert_eq!(source.scan_stats().blocks_read, 1);
    }
}
