//! Dataset statistics in the shape of the paper's Table 3.

use serde::{Deserialize, Serialize};

/// Summary statistics of a trajectory database, mirroring the first four rows
/// of Table 3 in the paper (number of objects `N`, time-domain length `T`,
/// average trajectory length, and total data size in points).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DatasetStats {
    /// Number of objects `N`.
    pub num_objects: usize,
    /// Length of the time domain `T` (number of discrete time points spanned).
    pub time_domain_length: i64,
    /// Average number of samples per trajectory.
    pub average_trajectory_length: f64,
    /// Total number of samples across all trajectories ("data size (points)").
    pub total_points: usize,
}

impl DatasetStats {
    /// Renders the statistics as aligned `key: value` lines, convenient for
    /// the Table 3 reproduction binary and for examples.
    pub fn to_table(&self) -> String {
        format!(
            "number of objects (N): {}\n\
             time domain length (T): {}\n\
             average trajectory length: {:.1}\n\
             data size (points): {}",
            self.num_objects,
            self.time_domain_length,
            self.average_trajectory_length,
            self.total_points
        )
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N={} T={} avg_len={:.1} points={}",
            self.num_objects,
            self.time_domain_length,
            self.average_trajectory_length,
            self.total_points
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_contains_all_rows() {
        let stats = DatasetStats {
            num_objects: 267,
            time_domain_length: 10586,
            average_trajectory_length: 224.0,
            total_points: 59894,
        };
        let table = stats.to_table();
        assert!(table.contains("267"));
        assert!(table.contains("10586"));
        assert!(table.contains("224.0"));
        assert!(table.contains("59894"));
        let display = stats.to_string();
        assert!(display.contains("N=267"));
    }
}
