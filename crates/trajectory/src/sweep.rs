//! Streaming snapshot extraction: one time-ordered pass over all samples.
//!
//! [`TrajectoryDatabase::snapshot`] answers "where is everyone at time `t`?"
//! by binary-searching every trajectory, which costs `O(N log |o|)` per time
//! point and `O(T · N log |o|)` for a whole CMC run. A convoy query, however,
//! visits time points *in order*, so the searches are pure waste: a cursor
//! per object that only ever moves forward yields every snapshot of the
//! window in amortized `O(total samples + N · T)` — one sorted sweep, no
//! re-searching and no per-tick index rebuilds.
//!
//! [`SnapshotSweep`] is that cursor. It is an `Iterator<Item = Snapshot>`
//! producing snapshots bit-identical to per-tick
//! [`TrajectoryDatabase::snapshot`] calls (same entry order, same
//! interpolation arithmetic), which is what lets the convoy engines switch
//! between the two extraction paths freely.

use crate::database::ObjectId;
use crate::database::{Snapshot, SnapshotEntry, SnapshotPolicy, TrajectoryDatabase};
use crate::point::TrajPoint;
use crate::time::{TimeInterval, TimePoint};

/// A forward-only cursor into one object's sample list.
#[derive(Debug, Clone)]
struct ObjectCursor<'a> {
    id: ObjectId,
    points: &'a [TrajPoint],
    /// Index of the last sample with `points[idx].t <= t` for the sweep's
    /// current time `t` (only valid once `t` has reached the object's start).
    idx: usize,
}

/// A streaming cursor that yields the successive [`Snapshot`]s of a time
/// window from a single time-ordered pass over all samples.
///
/// Snapshots are produced for **every** time point of the window, including
/// empty ones (an empty snapshot is what closes open convoy candidates, so
/// skipping it would change CMC semantics).
///
/// ```
/// use trajectory::{ObjectId, SnapshotPolicy, SnapshotSweep, Trajectory, TrajectoryDatabase};
///
/// let mut db = TrajectoryDatabase::new();
/// db.insert(
///     ObjectId(1),
///     Trajectory::from_tuples([(0.0, 0.0, 0), (2.0, 0.0, 2)]).unwrap(),
/// );
/// let snapshots: Vec<_> = db.sweep(SnapshotPolicy::Interpolate).collect();
/// assert_eq!(snapshots.len(), 3);
/// assert_eq!(snapshots[1].entries[0].position.x, 1.0); // interpolated at t=1
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotSweep<'a> {
    cursors: Vec<ObjectCursor<'a>>,
    next_t: TimePoint,
    end: TimePoint,
    /// Set once the snapshot at `end` has been produced. The end state is a
    /// flag rather than `next_t > end` because a window ending at
    /// `i64::MAX` has no representable "past the end" time point —
    /// incrementing there is exactly the overflow this guards against.
    finished: bool,
    policy: SnapshotPolicy,
    /// Capacity hint carried between ticks: consecutive snapshots have
    /// near-identical sizes, so the previous length avoids re-growing the
    /// entry vector at every time point.
    last_len: usize,
}

impl<'a> SnapshotSweep<'a> {
    /// Creates a sweep over `window` (clamped to nothing when the window is
    /// empty of objects — the iterator then yields empty snapshots).
    pub fn new(db: &'a TrajectoryDatabase, window: TimeInterval, policy: SnapshotPolicy) -> Self {
        let cursors = db
            .iter()
            .map(|(id, traj)| {
                let points = traj.points();
                // Seek once to the last sample at or before the window start
                // (one binary search), so a sub-window sweep deep into a long
                // trajectory does not linearly advance through every earlier
                // sample on its first tick.
                let idx = points
                    .partition_point(|p| p.t <= window.start)
                    .saturating_sub(1);
                ObjectCursor { id, points, idx }
            })
            .collect();
        SnapshotSweep {
            cursors,
            next_t: window.start,
            end: window.end,
            finished: window.start > window.end,
            policy,
            last_len: 0,
        }
    }

    /// A sweep that yields nothing (the whole-domain sweep of an empty
    /// database, whose time domain does not exist).
    pub fn empty(policy: SnapshotPolicy) -> SnapshotSweep<'static> {
        SnapshotSweep {
            cursors: Vec::new(),
            next_t: 1,
            end: 0,
            finished: true,
            policy,
            last_len: 0,
        }
    }

    /// The number of time points the sweep has not yet produced.
    pub fn remaining(&self) -> usize {
        if self.finished {
            0
        } else {
            self.end.saturating_sub(self.next_t).saturating_add(1) as usize
        }
    }
}

impl Iterator for SnapshotSweep<'_> {
    type Item = Snapshot;

    fn next(&mut self) -> Option<Snapshot> {
        if self.finished {
            return None;
        }
        let t = self.next_t;
        // Checked advance: a window ending at `i64::MAX` must flip to the
        // finished state, not wrap (release) or panic (debug) on `t + 1`.
        match t.checked_add(1) {
            Some(next) if next <= self.end => self.next_t = next,
            _ => self.finished = true,
        }

        let mut entries: Vec<SnapshotEntry> = Vec::with_capacity(self.last_len);
        for cursor in &mut self.cursors {
            // Cursors are in ascending id order (database iteration order), so
            // the entries come out sorted by id exactly like `snapshot()`.
            let first_t = cursor.points[0].t;
            let last_t = cursor.points[cursor.points.len() - 1].t;
            if t < first_t || t > last_t {
                continue;
            }
            // Advance to the last sample at or before `t`. The sweep time only
            // moves forward, so across the whole window each cursor advances
            // at most `points.len()` times: amortized O(1) per tick.
            while cursor.idx + 1 < cursor.points.len() && cursor.points[cursor.idx + 1].t <= t {
                cursor.idx += 1;
            }
            let before = &cursor.points[cursor.idx];
            if before.t == t {
                entries.push(SnapshotEntry {
                    id: cursor.id,
                    position: before.position(),
                    interpolated: false,
                });
            } else if self.policy == SnapshotPolicy::Interpolate {
                // Same virtual-point arithmetic as `Trajectory::location_at`
                // (one shared helper), so swept and per-tick snapshots are
                // bit-identical.
                let after = &cursor.points[cursor.idx + 1];
                entries.push(SnapshotEntry {
                    id: cursor.id,
                    position: TrajPoint::interpolate(before, after, t),
                    interpolated: true,
                });
            }
        }
        self.last_len = entries.len();
        Some(Snapshot { time: t, entries })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for SnapshotSweep<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::Trajectory;
    use proptest::prelude::*;

    fn traj(pts: &[(f64, f64, i64)]) -> Trajectory {
        Trajectory::from_tuples(pts.iter().copied()).unwrap()
    }

    fn sample_db() -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        db.insert(
            ObjectId(1),
            traj(&[
                (0.0, 0.0, 0),
                (1.0, 0.0, 1),
                (2.0, 0.0, 2),
                (3.0, 0.0, 3),
                (4.0, 0.0, 4),
            ]),
        );
        // Irregular sampling: t=2 missing.
        db.insert(
            ObjectId(2),
            traj(&[(0.0, 1.0, 0), (1.0, 1.0, 1), (3.0, 1.0, 3), (4.0, 1.0, 4)]),
        );
        // Appears late.
        db.insert(
            ObjectId(3),
            traj(&[(2.0, 5.0, 2), (3.0, 5.0, 3), (4.0, 5.0, 4)]),
        );
        db
    }

    #[test]
    fn sweep_matches_per_tick_snapshots_exactly() {
        let db = sample_db();
        for policy in [SnapshotPolicy::Interpolate, SnapshotPolicy::ExactOnly] {
            let window = db.time_domain().unwrap();
            let swept: Vec<Snapshot> = SnapshotSweep::new(&db, window, policy).collect();
            let per_tick: Vec<Snapshot> = window.iter().map(|t| db.snapshot(t, policy)).collect();
            assert_eq!(swept, per_tick);
        }
    }

    #[test]
    fn sweep_covers_sub_windows_and_out_of_range_windows() {
        let db = sample_db();
        let swept: Vec<Snapshot> =
            SnapshotSweep::new(&db, TimeInterval::new(2, 3), SnapshotPolicy::Interpolate).collect();
        assert_eq!(swept.len(), 2);
        assert_eq!(swept[0], db.snapshot(2, SnapshotPolicy::Interpolate));
        assert_eq!(swept[1], db.snapshot(3, SnapshotPolicy::Interpolate));
        // A window entirely outside the data yields empty snapshots, exactly
        // like per-tick extraction.
        let outside: Vec<Snapshot> = SnapshotSweep::new(
            &db,
            TimeInterval::new(100, 102),
            SnapshotPolicy::Interpolate,
        )
        .collect();
        assert_eq!(outside.len(), 3);
        assert!(outside.iter().all(Snapshot::is_empty));
    }

    #[test]
    fn sub_window_sweep_seeks_instead_of_scanning_the_prefix() {
        // A window deep inside a long trajectory: the constructor must seek
        // each cursor near the window start (correctness checked here; the
        // seek keeps the first tick O(log n) instead of O(n)).
        let mut db = TrajectoryDatabase::new();
        db.insert(
            ObjectId(1),
            Trajectory::from_tuples((0..10_000).map(|t| (t as f64, 0.0, t))).unwrap(),
        );
        // Irregularly sampled neighbour, also starting long before the window.
        db.insert(
            ObjectId(2),
            Trajectory::from_tuples((0..2_000).map(|t| (t as f64 * 5.0, 1.0, t * 5))).unwrap(),
        );
        let window = TimeInterval::new(9_900, 9_920);
        let swept: Vec<Snapshot> =
            SnapshotSweep::new(&db, window, SnapshotPolicy::Interpolate).collect();
        assert_eq!(swept.len(), 21);
        for (snapshot, t) in swept.iter().zip(window.iter()) {
            assert_eq!(snapshot, &db.snapshot(t, SnapshotPolicy::Interpolate));
        }
    }

    #[test]
    fn sweep_over_empty_database_yields_empty_snapshots() {
        let db = TrajectoryDatabase::new();
        let swept: Vec<Snapshot> =
            SnapshotSweep::new(&db, TimeInterval::new(0, 2), SnapshotPolicy::Interpolate).collect();
        assert_eq!(swept.len(), 3);
        assert!(swept.iter().all(Snapshot::is_empty));
        // The whole-domain sweep of an empty database yields nothing at all.
        assert_eq!(db.sweep(SnapshotPolicy::Interpolate).count(), 0);
    }

    #[test]
    fn whole_domain_sweep_uses_the_time_domain() {
        let db = sample_db();
        let swept: Vec<Snapshot> = db.sweep(SnapshotPolicy::Interpolate).collect();
        assert_eq!(swept.len(), 5);
        assert_eq!(swept[0].time, 0);
        assert_eq!(swept[4].time, 4);
    }

    #[test]
    fn window_ending_at_i64_max_terminates_and_matches_per_tick() {
        // Regression: the sweep used to advance with a bare `next_t += 1`,
        // which panics in debug (and wraps into an infinite loop in release)
        // when the window ends at `i64::MAX`.
        let mut db = TrajectoryDatabase::new();
        db.insert(
            ObjectId(1),
            traj(&[(0.0, 0.0, i64::MAX - 2), (2.0, 0.0, i64::MAX)]),
        );
        let window = TimeInterval::new(i64::MAX - 2, i64::MAX);
        let mut sweep = SnapshotSweep::new(&db, window, SnapshotPolicy::Interpolate);
        assert_eq!(sweep.remaining(), 3);
        let swept: Vec<Snapshot> = sweep.by_ref().collect();
        assert_eq!(swept.len(), 3);
        for (snapshot, t) in swept.iter().zip([i64::MAX - 2, i64::MAX - 1, i64::MAX]) {
            assert_eq!(snapshot, &db.snapshot(t, SnapshotPolicy::Interpolate));
        }
        // The exhausted sweep stays exhausted.
        assert_eq!(sweep.remaining(), 0);
        assert_eq!(sweep.next(), None);
    }

    #[test]
    fn sweep_reports_exact_size() {
        let db = sample_db();
        let mut sweep =
            SnapshotSweep::new(&db, TimeInterval::new(0, 4), SnapshotPolicy::Interpolate);
        assert_eq!(sweep.len(), 5);
        sweep.next();
        assert_eq!(sweep.remaining(), 4);
        assert_eq!(sweep.size_hint(), (4, Some(4)));
    }

    prop_compose! {
        fn arb_db()(num_objects in 1usize..6)
            (tables in proptest::collection::vec(
                (proptest::collection::btree_set(-20i64..20, 1..12),
                 proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 12)),
                num_objects..num_objects + 1))
            -> TrajectoryDatabase {
            let mut db = TrajectoryDatabase::new();
            for (i, (times, coords)) in tables.into_iter().enumerate() {
                let pts: Vec<TrajPoint> = times
                    .into_iter()
                    .zip(coords)
                    .map(|(t, (x, y))| TrajPoint::new(x, y, t))
                    .collect();
                db.insert(ObjectId(i as u64), Trajectory::from_points(pts).unwrap());
            }
            db
        }
    }

    proptest! {
        #[test]
        fn sweep_equals_per_tick_extraction_on_random_databases(db in arb_db()) {
            let window = db.time_domain().unwrap();
            for policy in [SnapshotPolicy::Interpolate, SnapshotPolicy::ExactOnly] {
                let swept: Vec<Snapshot> = SnapshotSweep::new(&db, window, policy).collect();
                prop_assert_eq!(swept.len() as i64, window.num_points());
                for (snapshot, t) in swept.iter().zip(window.iter()) {
                    prop_assert_eq!(snapshot, &db.snapshot(t, policy));
                }
            }
        }
    }
}
