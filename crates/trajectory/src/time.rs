//! The discrete time model: time points, closed intervals, and λ-length
//! partitioning of the time domain (Section 5.3 of the paper).

use serde::{Deserialize, Serialize};

/// A discrete time point. The paper's time domain is the ordered set
/// `{t_1, t_2, …, t_T}`; we represent time points as `i64` ticks.
pub type TimePoint = i64;

/// A closed time interval `[start, end]` with `start <= end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeInterval {
    /// First time point of the interval (inclusive).
    pub start: TimePoint,
    /// Last time point of the interval (inclusive).
    pub end: TimePoint,
}

impl TimeInterval {
    /// Creates an interval, normalising the endpoint order.
    #[inline]
    pub fn new(a: TimePoint, b: TimePoint) -> Self {
        if a <= b {
            TimeInterval { start: a, end: b }
        } else {
            TimeInterval { start: b, end: a }
        }
    }

    /// A single-instant interval `[t, t]`.
    #[inline]
    pub const fn instant(t: TimePoint) -> Self {
        TimeInterval { start: t, end: t }
    }

    /// Number of discrete time points covered, i.e. `end - start + 1`,
    /// saturating at `i64::MAX` for intervals wider than the tick range.
    #[inline]
    pub fn num_points(&self) -> i64 {
        self.end.saturating_sub(self.start).saturating_add(1)
    }

    /// Duration `end - start` (zero for an instant), saturating at
    /// `i64::MAX` for intervals spanning more than the full tick range.
    #[inline]
    pub fn duration(&self) -> i64 {
        self.end.saturating_sub(self.start)
    }

    /// Returns `true` when `t` lies inside the interval.
    #[inline]
    pub fn contains(&self, t: TimePoint) -> bool {
        t >= self.start && t <= self.end
    }

    /// Returns `true` when the two intervals share at least one time point.
    #[inline]
    pub fn intersects(&self, other: &TimeInterval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The intersection of the two intervals, or `None` when disjoint.
    pub fn intersection(&self, other: &TimeInterval) -> Option<TimeInterval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start <= end {
            Some(TimeInterval { start, end })
        } else {
            None
        }
    }

    /// The smallest interval covering both inputs (their convex hull in time).
    pub fn hull(&self, other: &TimeInterval) -> TimeInterval {
        TimeInterval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Iterates over every discrete time point of the interval in order.
    pub fn iter(&self) -> impl Iterator<Item = TimePoint> + '_ {
        self.start..=self.end
    }
}

/// Partitioning of a time domain into consecutive partitions of λ time points
/// each (the `T_z` partitions of Algorithm 2). The final partition may be
/// shorter when λ does not divide the domain length.
///
/// Partitions are produced so that consecutive partitions share their boundary
/// time point (`[t1, t4]`, `[t4, t7]`, … for λ = 4 in the paper's Figure 9),
/// which is what allows clusters in adjacent partitions to be joined without
/// losing candidates at partition boundaries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimePartition {
    /// The full time domain being partitioned.
    pub domain: TimeInterval,
    /// Number of time points per partition (λ ≥ 2).
    pub lambda: i64,
}

impl TimePartition {
    /// Creates a partitioning of `domain` with partitions of `lambda` time
    /// points. `lambda` is clamped to at least 2 (a partition must span at
    /// least one segment of time).
    pub fn new(domain: TimeInterval, lambda: i64) -> Self {
        TimePartition {
            domain,
            lambda: lambda.max(2),
        }
    }

    /// Number of partitions produced.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// Returns `true` when the partitioning produces no partitions (never the
    /// case for a valid domain, but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the partitions in ascending time order. Each partition
    /// covers `lambda` time points and shares its first time point with the
    /// previous partition's last time point.
    pub fn iter(&self) -> TimePartitionIter {
        TimePartitionIter {
            current_start: self.domain.start,
            domain_end: self.domain.end,
            step: self.lambda - 1,
            done: false,
        }
    }

    /// Returns the partition index that contains time `t`, or `None` when `t`
    /// is outside the domain. Boundary time points belong to the earlier
    /// partition (consistent with [`TimePartition::iter`]).
    pub fn partition_of(&self, t: TimePoint) -> Option<usize> {
        if !self.domain.contains(t) {
            return None;
        }
        let step = self.lambda - 1;
        // `t` is inside the domain, but the domain itself may span most of
        // the i64 range, so the offset must not be computed bare.
        let offset = t.saturating_sub(self.domain.start);
        let idx = (offset / step) as usize;
        // The last time point of the domain belongs to the final partition.
        let last_idx = self.len().saturating_sub(1);
        Some(idx.min(last_idx))
    }
}

/// Iterator over the partitions of a [`TimePartition`].
#[derive(Debug, Clone)]
pub struct TimePartitionIter {
    current_start: TimePoint,
    domain_end: TimePoint,
    step: i64,
    done: bool,
}

impl Iterator for TimePartitionIter {
    type Item = TimeInterval;

    fn next(&mut self) -> Option<TimeInterval> {
        if self.done || self.current_start > self.domain_end {
            return None;
        }
        let end = self
            .current_start
            .saturating_add(self.step)
            .min(self.domain_end);
        let interval = TimeInterval::new(self.current_start, end);
        if end >= self.domain_end {
            self.done = true;
        } else {
            self.current_start = end;
        }
        Some(interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interval_normalises_order() {
        let i = TimeInterval::new(5, 2);
        assert_eq!(i.start, 2);
        assert_eq!(i.end, 5);
        assert_eq!(i.num_points(), 4);
        assert_eq!(i.duration(), 3);
    }

    #[test]
    fn instant_interval() {
        let i = TimeInterval::instant(7);
        assert_eq!(i.num_points(), 1);
        assert_eq!(i.duration(), 0);
        assert!(i.contains(7));
        assert!(!i.contains(8));
    }

    #[test]
    fn interval_intersection() {
        let a = TimeInterval::new(0, 10);
        let b = TimeInterval::new(5, 15);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(TimeInterval::new(5, 10)));
        let c = TimeInterval::new(11, 20);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
        // Touching at a single point counts as intersecting.
        let d = TimeInterval::new(10, 12);
        assert!(a.intersects(&d));
        assert_eq!(a.intersection(&d), Some(TimeInterval::instant(10)));
    }

    #[test]
    fn interval_hull() {
        let a = TimeInterval::new(0, 3);
        let b = TimeInterval::new(10, 12);
        assert_eq!(a.hull(&b), TimeInterval::new(0, 12));
    }

    #[test]
    fn interval_iter_yields_every_point() {
        let pts: Vec<_> = TimeInterval::new(3, 6).iter().collect();
        assert_eq!(pts, vec![3, 4, 5, 6]);
    }

    #[test]
    fn partition_matches_paper_figure9() {
        // Figure 9(b): time domain [t1, t7], λ = 4 → partitions [t1,t4], [t4,t7].
        let p = TimePartition::new(TimeInterval::new(1, 7), 4);
        let parts: Vec<_> = p.iter().collect();
        assert_eq!(
            parts,
            vec![TimeInterval::new(1, 4), TimeInterval::new(4, 7)]
        );
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn partition_with_remainder() {
        let p = TimePartition::new(TimeInterval::new(0, 10), 4);
        let parts: Vec<_> = p.iter().collect();
        assert_eq!(
            parts,
            vec![
                TimeInterval::new(0, 3),
                TimeInterval::new(3, 6),
                TimeInterval::new(6, 9),
                TimeInterval::new(9, 10),
            ]
        );
    }

    #[test]
    fn partition_lambda_clamped_to_two() {
        let p = TimePartition::new(TimeInterval::new(0, 4), 1);
        assert_eq!(p.lambda, 2);
        let parts: Vec<_> = p.iter().collect();
        assert_eq!(parts.len(), 4);
    }

    #[test]
    fn partition_larger_than_domain() {
        let p = TimePartition::new(TimeInterval::new(0, 3), 100);
        let parts: Vec<_> = p.iter().collect();
        assert_eq!(parts, vec![TimeInterval::new(0, 3)]);
    }

    #[test]
    fn partition_of_locates_time_points() {
        let p = TimePartition::new(TimeInterval::new(0, 10), 4);
        assert_eq!(p.partition_of(0), Some(0));
        assert_eq!(p.partition_of(2), Some(0));
        assert_eq!(p.partition_of(3), Some(1)); // boundary point: earlier index by floor division
        assert_eq!(p.partition_of(10), Some(3));
        assert_eq!(p.partition_of(11), None);
        assert_eq!(p.partition_of(-1), None);
    }

    proptest! {
        #[test]
        fn partitions_cover_domain_and_overlap_at_boundaries(
            start in -50i64..50, len in 1i64..200, lambda in 2i64..40) {
            let domain = TimeInterval::new(start, start + len);
            let partition = TimePartition::new(domain, lambda);
            let parts: Vec<_> = partition.iter().collect();
            prop_assert!(!parts.is_empty());
            // First partition starts at the domain start, last ends at the end.
            prop_assert_eq!(parts.first().unwrap().start, domain.start);
            prop_assert_eq!(parts.last().unwrap().end, domain.end);
            // Consecutive partitions share exactly their boundary point.
            for w in parts.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
            // Every partition except possibly the last covers exactly λ points.
            for p in &parts[..parts.len() - 1] {
                prop_assert_eq!(p.num_points(), lambda);
            }
            // Every domain time point is inside at least one partition.
            for t in domain.iter() {
                prop_assert!(parts.iter().any(|p| p.contains(t)));
            }
        }

        #[test]
        fn intersection_is_commutative_and_contained(
            a1 in -100i64..100, a2 in -100i64..100,
            b1 in -100i64..100, b2 in -100i64..100) {
            let a = TimeInterval::new(a1, a2);
            let b = TimeInterval::new(b1, b2);
            prop_assert_eq!(a.intersection(&b), b.intersection(&a));
            if let Some(i) = a.intersection(&b) {
                prop_assert!(i.start >= a.start && i.end <= a.end);
                prop_assert!(i.start >= b.start && i.end <= b.end);
            } else {
                prop_assert!(!a.intersects(&b));
            }
        }
    }
}
