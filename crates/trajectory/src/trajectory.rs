//! Trajectories: timestamped polylines with interpolation and slicing.

use crate::error::{Result, TrajectoryError};
use crate::geometry::bbox::BoundingBox;
use crate::geometry::point::Point;
use crate::point::TrajPoint;
use crate::time::{TimeInterval, TimePoint};
use serde::{Deserialize, Serialize};

/// The past trajectory of an object: a polyline given as a sequence of
/// timestamped locations `⟨p_a, p_{a+1}, …, p_b⟩` with strictly increasing
/// timestamps (the paper's Section 3 model).
///
/// Sampling may be *irregular*: consecutive samples may skip time points of
/// the global time domain. [`Trajectory::location_at`] therefore distinguishes
/// exact samples from linearly interpolated *virtual points* (the virtual
/// locations used by the CMC algorithm).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    points: Vec<TrajPoint>,
}

impl Trajectory {
    /// Builds a trajectory from a sequence of timestamped points.
    ///
    /// # Errors
    ///
    /// * [`TrajectoryError::EmptyTrajectory`] when `points` is empty;
    /// * [`TrajectoryError::NonMonotonicTime`] when timestamps are not
    ///   strictly increasing;
    /// * [`TrajectoryError::NonFiniteCoordinate`] when a coordinate is NaN or
    ///   infinite.
    pub fn from_points(points: Vec<TrajPoint>) -> Result<Self> {
        if points.is_empty() {
            return Err(TrajectoryError::EmptyTrajectory);
        }
        for (i, p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(TrajectoryError::NonFiniteCoordinate { index: i });
            }
            if i > 0 && points[i - 1].t >= p.t {
                return Err(TrajectoryError::NonMonotonicTime { index: i });
            }
        }
        Ok(Trajectory { points })
    }

    /// Builds a trajectory from `(x, y, t)` tuples.
    pub fn from_tuples<I>(tuples: I) -> Result<Self>
    where
        I: IntoIterator<Item = (f64, f64, TimePoint)>,
    {
        Self::from_points(tuples.into_iter().map(TrajPoint::from).collect())
    }

    /// The timestamped samples of the trajectory, in time order.
    #[inline]
    pub fn points(&self) -> &[TrajPoint] {
        &self.points
    }

    /// Number of samples (`|o|` in the paper's λ guideline).
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the trajectory has exactly one sample. (A
    /// trajectory is never empty by construction.)
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First sample.
    #[inline]
    pub fn first(&self) -> &TrajPoint {
        &self.points[0]
    }

    /// Last sample.
    #[inline]
    pub fn last(&self) -> &TrajPoint {
        &self.points[self.points.len() - 1]
    }

    /// The trajectory's time interval `o.τ = [t_a, t_b]`.
    #[inline]
    pub fn time_interval(&self) -> TimeInterval {
        TimeInterval::new(self.first().t, self.last().t)
    }

    /// Start time `t_a`.
    #[inline]
    pub fn start_time(&self) -> TimePoint {
        self.first().t
    }

    /// End time `t_b`.
    #[inline]
    pub fn end_time(&self) -> TimePoint {
        self.last().t
    }

    /// Returns `true` when the trajectory's interval covers time `t`
    /// (`t ∈ o.τ`). Note this does *not* require an exact sample at `t`.
    #[inline]
    pub fn covers(&self, t: TimePoint) -> bool {
        self.time_interval().contains(t)
    }

    /// Returns the exact sample at time `t`, if one exists.
    pub fn sample_at(&self, t: TimePoint) -> Option<&TrajPoint> {
        self.points
            .binary_search_by_key(&t, |p| p.t)
            .ok()
            .map(|i| &self.points[i])
    }

    /// Returns `true` when the trajectory has an exact (non-interpolated)
    /// sample at time `t`.
    #[inline]
    pub fn has_sample_at(&self, t: TimePoint) -> bool {
        self.sample_at(t).is_some()
    }

    /// `o(t)`: the location of the object at time `t`.
    ///
    /// When `t` coincides with a sample the sampled position is returned;
    /// otherwise the position is linearly interpolated between the
    /// surrounding samples (the *virtual point* of Section 4). Returns `None`
    /// when `t` lies outside the trajectory's time interval.
    pub fn location_at(&self, t: TimePoint) -> Option<Point> {
        if !self.covers(t) {
            return None;
        }
        match self.points.binary_search_by_key(&t, |p| p.t) {
            Ok(i) => Some(self.points[i].position()),
            Err(i) => {
                // `i` is the insertion index: points[i-1].t < t < points[i].t.
                Some(TrajPoint::interpolate(
                    &self.points[i - 1],
                    &self.points[i],
                    t,
                ))
            }
        }
    }

    /// Like [`Trajectory::location_at`] but returns an error naming the valid
    /// interval when `t` is out of range.
    pub fn try_location_at(&self, t: TimePoint) -> Result<Point> {
        self.location_at(t)
            .ok_or_else(|| TrajectoryError::TimeOutOfRange {
                requested: t,
                start: self.start_time(),
                end: self.end_time(),
            })
    }

    /// Returns the sub-trajectory restricted to the samples with timestamps
    /// inside `interval`, or `None` when no sample falls inside it.
    ///
    /// Only *exact* samples are retained; interpolation at the interval
    /// boundaries is the responsibility of callers that need it (the
    /// refinement step works directly on original samples).
    pub fn slice(&self, interval: TimeInterval) -> Option<Trajectory> {
        let first = self.points.partition_point(|p| p.t < interval.start);
        let last = self.points.partition_point(|p| p.t <= interval.end);
        if first >= last {
            return None;
        }
        Some(Trajectory {
            points: self.points[first..last].to_vec(),
        })
    }

    /// The timestamps of all samples.
    pub fn sample_times(&self) -> impl Iterator<Item = TimePoint> + '_ {
        self.points.iter().map(|p| p.t)
    }

    /// The total Euclidean length of the polyline (sum of consecutive sample
    /// distances).
    pub fn path_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].spatial_distance(&w[1]))
            .sum()
    }

    /// Spatial bounding box of all samples.
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::from_points(self.points.iter().map(|p| p.position()))
            // lint: allow(no-unwrap-in-lib) — Trajectory construction rejects empty point sets
            .expect("trajectory is never empty")
    }

    /// Number of time points of the global domain `[start_time, end_time]`
    /// that have **no** exact sample (the "missing points" the CMC algorithm
    /// must interpolate).
    pub fn missing_sample_count(&self) -> i64 {
        self.time_interval().num_points() - self.points.len() as i64
    }

    /// Density of the trajectory in its own time interval:
    /// `|samples| / |time points covered|` ∈ (0, 1].
    pub fn sampling_density(&self) -> f64 {
        self.points.len() as f64 / self.time_interval().num_points() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn traj(pts: &[(f64, f64, i64)]) -> Trajectory {
        Trajectory::from_tuples(pts.iter().copied()).unwrap()
    }

    #[test]
    fn construction_rejects_empty() {
        assert_eq!(
            Trajectory::from_points(vec![]),
            Err(TrajectoryError::EmptyTrajectory)
        );
    }

    #[test]
    fn construction_rejects_unordered_times() {
        let err = Trajectory::from_tuples([(0.0, 0.0, 3), (1.0, 1.0, 2)]).unwrap_err();
        assert_eq!(err, TrajectoryError::NonMonotonicTime { index: 1 });
        // Equal timestamps are also rejected (strictly increasing).
        let err = Trajectory::from_tuples([(0.0, 0.0, 3), (1.0, 1.0, 3)]).unwrap_err();
        assert_eq!(err, TrajectoryError::NonMonotonicTime { index: 1 });
    }

    #[test]
    fn construction_rejects_nan() {
        let err = Trajectory::from_tuples([(0.0, 0.0, 0), (f64::NAN, 1.0, 1)]).unwrap_err();
        assert_eq!(err, TrajectoryError::NonFiniteCoordinate { index: 1 });
        let err = Trajectory::from_tuples([(0.0, f64::NAN, 0)]).unwrap_err();
        assert_eq!(err, TrajectoryError::NonFiniteCoordinate { index: 0 });
    }

    #[test]
    fn construction_rejects_infinities() {
        // Infinite coordinates would silently collapse into one grid cell in
        // the clustering layer, so they are refused at the door like NaN.
        let err = Trajectory::from_tuples([(f64::INFINITY, 0.0, 0)]).unwrap_err();
        assert_eq!(err, TrajectoryError::NonFiniteCoordinate { index: 0 });
        let err =
            Trajectory::from_tuples([(0.0, 0.0, 0), (1.0, f64::NEG_INFINITY, 1)]).unwrap_err();
        assert_eq!(err, TrajectoryError::NonFiniteCoordinate { index: 1 });
        // The incremental builder funnels through the same validation.
        let err = crate::builder::TrajectoryBuilder::new()
            .push(0.0, 0.0, 0)
            .push(f64::INFINITY, 0.0, 1)
            .build()
            .unwrap_err();
        assert_eq!(err, TrajectoryError::NonFiniteCoordinate { index: 1 });
    }

    #[test]
    fn single_point_trajectory() {
        let t = traj(&[(1.0, 2.0, 5)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.time_interval(), TimeInterval::instant(5));
        assert_eq!(t.location_at(5), Some(Point::new(1.0, 2.0)));
        assert_eq!(t.location_at(6), None);
        assert_eq!(t.path_length(), 0.0);
        assert_eq!(t.missing_sample_count(), 0);
    }

    #[test]
    fn exact_and_interpolated_locations() {
        let t = traj(&[(0.0, 0.0, 0), (10.0, 0.0, 10)]);
        assert_eq!(t.location_at(0), Some(Point::new(0.0, 0.0)));
        assert_eq!(t.location_at(10), Some(Point::new(10.0, 0.0)));
        // Interpolated (virtual) point halfway through.
        assert_eq!(t.location_at(5), Some(Point::new(5.0, 0.0)));
        assert_eq!(t.location_at(3), Some(Point::new(3.0, 0.0)));
        assert!(t.has_sample_at(0));
        assert!(!t.has_sample_at(5));
    }

    #[test]
    fn location_outside_interval_is_none() {
        let t = traj(&[(0.0, 0.0, 2), (1.0, 1.0, 4)]);
        assert_eq!(t.location_at(1), None);
        assert_eq!(t.location_at(5), None);
        let err = t.try_location_at(9).unwrap_err();
        assert_eq!(
            err,
            TrajectoryError::TimeOutOfRange {
                requested: 9,
                start: 2,
                end: 4
            }
        );
    }

    #[test]
    fn slice_selects_samples_within_interval() {
        let t = traj(&[(0.0, 0.0, 0), (1.0, 0.0, 2), (2.0, 0.0, 4), (3.0, 0.0, 6)]);
        let s = t.slice(TimeInterval::new(1, 5)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.start_time(), 2);
        assert_eq!(s.end_time(), 4);
        // Interval with no samples.
        assert!(t.slice(TimeInterval::new(7, 9)).is_none());
        // Full-range slice returns everything.
        assert_eq!(t.slice(TimeInterval::new(0, 6)).unwrap().len(), 4);
    }

    #[test]
    fn path_length_and_bbox() {
        let t = traj(&[(0.0, 0.0, 0), (3.0, 4.0, 1), (3.0, 4.0, 2)]);
        assert_eq!(t.path_length(), 5.0);
        let b = t.bounding_box();
        assert_eq!(b.min, Point::new(0.0, 0.0));
        assert_eq!(b.max, Point::new(3.0, 4.0));
    }

    #[test]
    fn missing_samples_and_density() {
        // Covers [0, 10] = 11 time points with only 3 samples.
        let t = traj(&[(0.0, 0.0, 0), (1.0, 0.0, 5), (2.0, 0.0, 10)]);
        assert_eq!(t.missing_sample_count(), 8);
        assert!((t.sampling_density() - 3.0 / 11.0).abs() < 1e-12);
        // Fully sampled trajectory has density 1.
        let full = traj(&[(0.0, 0.0, 0), (1.0, 0.0, 1), (2.0, 0.0, 2)]);
        assert_eq!(full.missing_sample_count(), 0);
        assert_eq!(full.sampling_density(), 1.0);
    }

    #[test]
    fn sample_times_iteration() {
        let t = traj(&[(0.0, 0.0, 1), (1.0, 0.0, 4), (2.0, 0.0, 9)]);
        assert_eq!(t.sample_times().collect::<Vec<_>>(), vec![1, 4, 9]);
    }

    prop_compose! {
        fn arb_trajectory()(len in 1usize..40)
            (times in proptest::collection::btree_set(-500i64..500, len..len + 1),
             coords in proptest::collection::vec((-1000.0f64..1000.0, -1000.0f64..1000.0), len))
            -> Trajectory {
            let pts: Vec<TrajPoint> = times
                .into_iter()
                .zip(coords)
                .map(|(t, (x, y))| TrajPoint::new(x, y, t))
                .collect();
            Trajectory::from_points(pts).unwrap()
        }
    }

    proptest! {
        #[test]
        fn interpolation_stays_inside_bounding_box(t in arb_trajectory(), offset in 0i64..1000) {
            let interval = t.time_interval();
            let probe = interval.start + offset % interval.num_points().max(1);
            if let Some(p) = t.location_at(probe) {
                // Interpolated points lie on the polyline, hence inside the
                // (slightly expanded for numeric noise) bounding box.
                prop_assert!(t.bounding_box().expanded(1e-9).contains(&p));
            }
        }

        #[test]
        fn exact_samples_round_trip(t in arb_trajectory()) {
            for p in t.points() {
                prop_assert_eq!(t.location_at(p.t).unwrap(), p.position());
                prop_assert!(t.has_sample_at(p.t));
            }
        }

        #[test]
        fn slice_never_extends_interval(t in arb_trajectory(), a in -500i64..500, b in -500i64..500) {
            let interval = TimeInterval::new(a, b);
            if let Some(s) = t.slice(interval) {
                prop_assert!(s.start_time() >= interval.start);
                prop_assert!(s.end_time() <= interval.end);
                prop_assert!(s.len() <= t.len());
            }
        }
    }
}
