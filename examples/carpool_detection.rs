//! Carpool detection: the paper's motivating application — find cars that
//! follow the same route at the same time, so their drivers could share a
//! vehicle.
//!
//! The example generates a synthetic "private cars" dataset (the Car profile,
//! scaled down), runs CuTS*, and reports each discovered convoy as a
//! car-pooling opportunity with an estimate of the kilometres that could be
//! saved.
//!
//! ```text
//! cargo run --example carpool_detection
//! ```

use convoy_suite::prelude::*;

fn main() {
    // A scaled-down Copenhagen-cars-like dataset with planted commuter groups.
    let profile = DatasetProfile::car().scaled(0.1);
    let data = generate(&profile, 2024);
    println!(
        "generated {} cars, {} GPS points",
        data.database.len(),
        data.database.total_points()
    );

    // Convoy query: at least 3 cars within 80 metres for at least k ticks.
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
    let outcome = Discovery::new(Method::CutsStar).run(&data.database, &query);

    println!(
        "CuTS* found {} car-pooling opportunities in {:.2} s \
         ({} candidates from the filter step, δ = {:.1}, λ = {})",
        outcome.convoys.len(),
        outcome.timings.total().as_secs_f64(),
        outcome.stats.num_candidates,
        outcome.stats.delta,
        outcome.stats.lambda,
    );

    for (i, convoy) in outcome.convoys.iter().enumerate() {
        // Estimate the distance the group covers together: the path length of
        // one member inside the convoy interval.
        let representative = convoy.objects.iter().next().expect("non-empty convoy");
        let shared_km = data
            .database
            .get(representative)
            .and_then(|traj| traj.slice(convoy.interval()))
            .map(|slice| slice.path_length() / 1000.0)
            .unwrap_or(0.0);
        // Every member beyond the first could leave their car at home.
        let cars_saved = convoy.objects.len() - 1;
        println!(
            "opportunity #{i}: {} cars travelling together for {} ticks \
             (~{shared_km:.1} km shared, up to {cars_saved} car(s) off the road)",
            convoy.objects.len(),
            convoy.lifetime(),
        );
    }

    // Sanity: every planted commuter group should be rediscovered.
    let found_planted = data
        .ground_truth
        .iter()
        .filter(|planted| {
            outcome
                .convoys
                .iter()
                .any(|c| planted.members.iter().all(|m| c.objects.contains(*m)))
        })
        .count();
    println!(
        "{found_planted}/{} planted commuter groups were rediscovered",
        data.ground_truth.len()
    );
}
