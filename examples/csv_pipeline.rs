//! CSV pipeline: the shape of a real deployment — export a trajectory
//! database to CSV (the format a GPS feed or a data warehouse would hand
//! you), read it back, and run a convoy query on the imported data.
//!
//! ```text
//! cargo run --example csv_pipeline [path/to/trajectories.csv]
//! ```
//!
//! When a path is given, that file is loaded instead of the generated one;
//! the expected format is `object_id,t,x,y` with one sample per line.

use convoy_suite::datasets::io::{read_csv_file, write_csv_file};
use convoy_suite::prelude::*;

fn main() {
    let arg_path = std::env::args().nth(1);

    let (path, query) = match arg_path {
        Some(path) => {
            // A user-supplied file: use generic query parameters.
            (
                std::path::PathBuf::from(path),
                ConvoyQuery::new(3, 60, 50.0),
            )
        }
        None => {
            // No file given: generate a Taxi-profile dataset and export it.
            let profile = DatasetProfile::taxi().scaled(0.1);
            let data = generate(&profile, 11);
            let dir = std::env::temp_dir().join("convoy-csv-pipeline");
            std::fs::create_dir_all(&dir).expect("create temp dir");
            let path = dir.join("taxi.csv");
            write_csv_file(&data.database, &path).expect("write CSV");
            println!(
                "exported {} objects / {} samples to {}",
                data.database.len(),
                data.database.total_points(),
                path.display()
            );
            (path, ConvoyQuery::new(profile.m, profile.k, profile.e))
        }
    };

    let db = match read_csv_file(&path) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("cannot load {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    println!("loaded {} from {}", db.stats(), path.display());

    let outcome = Discovery::new(Method::CutsStar).run(&db, &query);
    println!(
        "CuTS* found {} convoy(s) in {:.2} s (δ = {:.1}, λ = {})",
        outcome.convoys.len(),
        outcome.timings.total().as_secs_f64(),
        outcome.stats.delta,
        outcome.stats.lambda
    );
    for convoy in outcome.convoys.iter().take(10) {
        println!("  {convoy}");
    }
    if outcome.convoys.len() > 10 {
        println!("  … and {} more", outcome.convoys.len() - 10);
    }
}
