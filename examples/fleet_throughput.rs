//! Fleet throughput planning: the paper's delivery-truck application — find
//! trucks with coherent trajectory patterns so that deliveries can be
//! consolidated.
//!
//! The example generates a Truck-profile dataset, compares the running time
//! of CMC against the whole CuTS family (the Figure 12 experiment in
//! miniature), and prints the trucks whose routes overlap long enough to be
//! scheduled together.
//!
//! ```text
//! cargo run --example fleet_throughput
//! ```

use convoy_suite::prelude::*;

fn main() {
    let profile = DatasetProfile::truck().scaled(0.1);
    let data = generate(&profile, 77);
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);

    println!(
        "fleet of {} trucks, {} position reports, time domain of {} ticks",
        data.database.len(),
        data.database.total_points(),
        data.database
            .time_domain()
            .map(|d| d.num_points())
            .unwrap_or(0)
    );
    println!(
        "query: at least {} trucks within {} m for {} consecutive ticks\n",
        query.m, query.e, query.k
    );

    let mut reference: Option<DiscoveryOutcome> = None;
    for method in [
        Method::Cmc,
        Method::Cuts,
        Method::CutsPlus,
        Method::CutsStar,
    ] {
        let outcome = Discovery::new(method).run(&data.database, &query);
        let elapsed = outcome.timings.total().as_secs_f64();
        match &reference {
            None => {
                println!(
                    "{:7} {elapsed:8.3} s  ({} convoys)",
                    method.name(),
                    outcome.convoys.len()
                );
                reference = Some(outcome);
            }
            Some(cmc) => {
                let speedup = cmc.timings.total().as_secs_f64() / elapsed.max(1e-9);
                let agrees = convoy_suite::core::query::result_sets_equivalent(
                    &outcome.convoys,
                    &cmc.convoys,
                );
                println!(
                    "{:7} {elapsed:8.3} s  ({} convoys, {speedup:.1}x vs CMC, results {})",
                    method.name(),
                    outcome.convoys.len(),
                    if agrees { "identical" } else { "DIFFERENT!" }
                );
            }
        }
    }

    // Report the consolidation opportunities from the exact result set.
    let convoys = reference.expect("CMC ran").convoys;
    println!("\nconsolidation candidates:");
    for convoy in &convoys {
        let trucks: Vec<String> = convoy.objects.iter().map(|o| o.to_string()).collect();
        println!(
            "  trucks {} share a route for {} ticks [{} – {}]",
            trucks.join(", "),
            convoy.lifetime(),
            convoy.start,
            convoy.end
        );
    }
    if convoys.is_empty() {
        println!("  (none at this scale — increase the scale or loosen the query)");
    }
}
