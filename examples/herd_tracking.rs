//! Herd tracking: the paper's Cattle dataset in miniature — very few animals,
//! very long and densely sampled trajectories from GPS ear tags.
//!
//! This example highlights the trajectory-simplification trade-off that
//! dominates this kind of data (the Figure 13/15 story): it compares DP, DP+
//! and DP* on the raw trajectories, then runs the full discovery with each
//! CuTS variant and shows where the time goes.
//!
//! ```text
//! cargo run --example herd_tracking
//! ```

use convoy_suite::prelude::*;
use convoy_suite::simplify::ReductionStats;
use std::time::Instant;

fn main() {
    let profile = DatasetProfile::cattle().scaled(0.05);
    let data = generate(&profile, 5);
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
    println!(
        "herd of {} animals, {} GPS fixes each on average",
        data.database.len(),
        data.database.stats().average_trajectory_length as u64
    );

    // --- Simplification comparison (Figure 15 in miniature) -------------------
    let delta = profile.delta * 0.2;
    println!("\nsimplification with δ = {delta:.0}:");
    for method in [
        SimplificationMethod::Dp,
        SimplificationMethod::DpPlus,
        SimplificationMethod::DpStar,
    ] {
        let started = Instant::now();
        let simplified: Vec<_> = data
            .database
            .iter()
            .map(|(_, traj)| method.simplify(traj, delta))
            .collect();
        let elapsed = started.elapsed().as_secs_f64();
        let stats = ReductionStats::from_simplified(simplified.iter());
        println!(
            "  {:4}  reduction {:5.1} %   max actual tolerance {:6.1}   {:.3} s",
            method.name(),
            stats.reduction_percent(),
            stats.max_actual_tolerance,
            elapsed
        );
    }

    // --- Full discovery with the stage breakdown (Figure 13 in miniature) -----
    println!(
        "\ndiscovery (m = {}, k = {}, e = {}):",
        query.m, query.k, query.e
    );
    for method in [Method::Cuts, Method::CutsPlus, Method::CutsStar] {
        let outcome = Discovery::new(method).run(&data.database, &query);
        let t = outcome.timings;
        println!(
            "  {:6}  {} herds   simplification {:.3} s | filter {:.3} s | refinement {:.3} s",
            method.name(),
            outcome.convoys.len(),
            t.simplification.as_secs_f64(),
            t.filter.as_secs_f64(),
            t.refinement.as_secs_f64(),
        );
    }
}
