//! Quickstart: build a tiny trajectory database by hand, run a convoy query
//! with every algorithm, and show that they agree.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use convoy_suite::prelude::*;

fn main() {
    // --- 1. Build a trajectory database --------------------------------------
    // Three delivery vans follow the same route between t = 0 and t = 19;
    // a fourth van drives elsewhere. Positions are metres, time is seconds.
    let mut db = TrajectoryDatabase::new();
    for van in 0..3u64 {
        let mut builder = TrajectoryBuilder::new();
        for t in 0..20i64 {
            // Same route, small lateral offset per van.
            let x = 10.0 * t as f64;
            let y = 2.0 * van as f64 + (t as f64 * 0.4).sin();
            builder.add(x, y, t);
        }
        db.insert(ObjectId(van), builder.build().expect("valid trajectory"));
    }
    let mut loner = TrajectoryBuilder::new();
    for t in 0..20i64 {
        loner.add(5.0 * t as f64, 500.0 + t as f64, t);
    }
    db.insert(ObjectId(99), loner.build().expect("valid trajectory"));

    println!("database: {}", db.stats());

    // --- 2. Define the convoy query ------------------------------------------
    // At least 3 objects, density-connected within 5 metres, for at least 10
    // consecutive seconds.
    let query = ConvoyQuery::new(3, 10, 5.0);

    // --- 3. Run every algorithm ----------------------------------------------
    for method in [
        Method::Cmc,
        Method::Cuts,
        Method::CutsPlus,
        Method::CutsStar,
    ] {
        let outcome = Discovery::new(method).run(&db, &query);
        println!(
            "{:7} found {} convoy(s) in {:.3} ms",
            method.name(),
            outcome.convoys.len(),
            outcome.timings.total().as_secs_f64() * 1e3
        );
        for convoy in &outcome.convoys {
            println!("         {convoy}");
        }
    }
}
