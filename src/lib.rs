//! # `convoy-suite` — convoy discovery in trajectory databases
//!
//! The umbrella crate of this workspace: it re-exports the full public API of
//! the reproduction of *Discovery of Convoys in Trajectory Databases*
//! (Jeung, Yiu, Zhou, Jensen, Shen — VLDB 2008) and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! The individual crates are:
//!
//! * [`trajectory`] — geometry primitives, timestamped polylines, and the
//!   trajectory database with snapshot extraction;
//! * [`simplify`] (`traj-simplify`) — the DP, DP+ and DP* line-simplification
//!   algorithms with actual-tolerance tracking;
//! * [`cluster`] (`traj-cluster`) — DBSCAN, the uniform-grid index, and the
//!   sub-trajectory clustering with the convoy distance bounds;
//! * [`datasets`] (`traj-datasets`) — synthetic dataset profiles mirroring
//!   the paper's Truck/Cattle/Car/Taxi data plus CSV I/O;
//! * [`core`] (`convoy-core`) — the convoy query, CMC, the CuTS family and
//!   the MC2 baseline;
//! * [`stream`] (`convoy-stream`) — end-to-end streaming discovery: the
//!   incremental CuTS filter with windowed eviction over live feeds.
//!
//! ## Quick start
//!
//! ```
//! use convoy_suite::prelude::*;
//!
//! // Generate a small synthetic dataset with planted convoys…
//! let data = generate(&DatasetProfile::truck().scaled(0.02), 7);
//! // …and discover convoys with CuTS*.
//! let query = ConvoyQuery::new(data.profile.m, data.profile.k, data.profile.e);
//! let outcome = Discovery::new(Method::CutsStar).run(&data.database, &query);
//! println!("found {} convoys", outcome.convoys.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use convoy_core as core;
pub use convoy_stream as stream;
pub use traj_cluster as cluster;
pub use traj_datasets as datasets;
pub use traj_simplify as simplify;
pub use trajectory;

/// The most commonly used items from every crate, importable in one line.
pub mod prelude {
    pub use convoy_core::{
        cmc, cmc_parallel, cmc_sharded, compare_result_sets, mc2, normalize_convoys, CmcEngine,
        CmcState, CmcStats, Convoy, ConvoyQuery, CutsConfig, CutsVariant, Discovery,
        DiscoveryOutcome, Mc2Config, Method,
    };
    pub use convoy_stream::{
        ConvoyStream, EvictionPolicy, FeedIngest, ReplayStream, StreamConfig, StreamOutcome,
        StreamStats,
    };
    pub use traj_cluster::{
        merge_shard_clusters, shard_clusters, sharded_snapshot_clusters, snapshot_clusters,
        Cluster, ShardClusters, ShardGrid,
    };
    pub use traj_datasets::{
        generate, open_source, read_csv, write_container_file, write_csv, ContainerError,
        ContainerReader, DatasetProfile, InputFormat, ProfileName,
    };
    pub use traj_simplify::{
        DouglasPeucker, DouglasPeuckerPlus, DouglasPeuckerStar, SimplificationMethod, Simplifier,
        ToleranceMode,
    };
    pub use trajectory::{
        ObjectId, Point, ScanStats, TimeInterval, TrajPoint, Trajectory, TrajectoryBuilder,
        TrajectoryDatabase, TrajectorySource,
    };
}
