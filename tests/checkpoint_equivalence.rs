//! Checkpoint/restore equivalence: resuming a [`ConvoyStream`] from a
//! snapshot must be **bit-identical** to never having stopped — run N ticks,
//! checkpoint, restore, run M more ≡ run N+M straight, on the raw convoys
//! (order included), the candidates, and every [`StreamStats`] counter. The
//! property holds at *any* cut point, mid-partition included, because the
//! checkpoint captures the full resumable frontier (validator, buffers,
//! partition cursor, candidate chain, refinement fold, undrained output)
//! and everything it omits is scratch whose reconstruction is
//! output-neutral.
//!
//! The second half of the suite is the durability contract: a torn write
//! (every strict prefix), a flipped bit (every byte), a foreign file, a
//! future format version and trailing garbage must each produce a clean
//! [`CheckpointError`] — never a panic, never a silently wrong stream.

use convoy_core::CutsConfig;
use convoy_stream::{feed_order_samples, replay_config, CheckpointError};
use convoy_suite::prelude::*;
use proptest::prelude::*;

/// Feeds `samples[..cut]` into a fresh stream, checkpoints it, restores,
/// feeds the rest, and asserts the outcome equals the uninterrupted run —
/// raw convoys, candidates and stats alike. Also asserts the encoding is
/// deterministic (restore → re-encode reproduces the same bytes).
fn assert_resume_equivalence(
    config: StreamConfig,
    samples: &[(ObjectId, TrajPoint)],
    cut: usize,
    context: &str,
) {
    let mut straight = ConvoyStream::new(config);
    for (id, p) in samples {
        straight.push(*id, p.t, p.x, p.y).unwrap();
    }
    let expected = straight.finish();

    let mut first = ConvoyStream::new(config);
    for (id, p) in &samples[..cut] {
        first.push(*id, p.t, p.x, p.y).unwrap();
    }
    let bytes = first.checkpoint_bytes();
    let mut resumed = ConvoyStream::from_checkpoint_bytes(&bytes)
        .unwrap_or_else(|e| panic!("restore failed on {context} at cut {cut}: {e}"));
    assert_eq!(
        resumed.checkpoint_bytes(),
        bytes,
        "restore → re-encode must be byte-stable on {context} at cut {cut}"
    );
    assert_eq!(resumed.config(), &config, "configuration rides along");
    for (id, p) in &samples[cut..] {
        resumed.push(*id, p.t, p.x, p.y).unwrap();
    }
    let outcome = resumed.finish();
    assert_eq!(
        outcome, expected,
        "resumed run diverged from the straight run on {context} at cut {cut}"
    );
}

prop_compose! {
    /// A database of unconstrained random walks with irregular sampling —
    /// the same generator shape as the stream-equivalence harness.
    fn arb_walk_db()(num_objects in 2usize..7)
        (tables in proptest::collection::vec(
            (proptest::collection::btree_set(0i64..30, 1..18),
             proptest::collection::vec((-6.0f64..6.0, -6.0f64..6.0), 18)),
            num_objects..num_objects + 1))
        -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        for (i, (times, coords)) in tables.into_iter().enumerate() {
            let (mut x, mut y) = (0.0, 0.0);
            let pts: Vec<TrajPoint> = times
                .into_iter()
                .zip(coords)
                .map(|(t, (dx, dy))| {
                    x += dx;
                    y += dy;
                    TrajPoint::new(x, y, t)
                })
                .collect();
            db.insert(ObjectId(i as u64), Trajectory::from_points(pts).unwrap());
        }
        db
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn resume_is_bit_identical_on_random_walks(
        db in arb_walk_db(),
        m in 2usize..4,
        k in 2usize..5,
        lambda in 2usize..7,
        cut_frac in 0.0f64..1.0,
        horizon_sel in 0i64..8,
    ) {
        let query = ConvoyQuery::new(m, k, 5.0);
        // horizon_sel < 2 means unbounded; otherwise a finite horizon of
        // that many ticks, so both eviction regimes are exercised.
        let mut eviction = EvictionPolicy::unbounded();
        if horizon_sel >= 2 {
            eviction = eviction.with_horizon(horizon_sel);
        }
        let config = StreamConfig::new(query, 0.5, lambda).with_eviction(eviction);
        let samples = feed_order_samples(&db);
        // Cut anywhere, first and one-past-last sample included: a
        // checkpoint of an empty or fully-fed stream must resume too.
        let cut = ((samples.len() as f64) * cut_frac) as usize;
        let cut = cut.min(samples.len());
        assert_resume_equivalence(config, &samples, cut, "a random-walk database");
    }
}

#[test]
fn resume_is_bit_identical_on_every_dataset_profile() {
    for name in ProfileName::ALL {
        let profile = DatasetProfile::named(name).scaled(0.02);
        let data = generate(&profile, 20080824);
        let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
        let cuts = CutsConfig::new(CutsVariant::Cuts);
        let config = replay_config(&cuts, &data.database, &query);
        let samples = feed_order_samples(&data.database);
        for cut in [0, samples.len() / 3, samples.len() / 2, samples.len()] {
            assert_resume_equivalence(config, &samples, cut, name.name());
        }
    }
}

#[test]
fn resume_is_bit_identical_under_finite_horizon_on_a_profile() {
    let profile = DatasetProfile::truck().scaled(0.02);
    let data = generate(&profile, 7);
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
    let cuts = CutsConfig::new(CutsVariant::CutsStar);
    let config = replay_config(&cuts, &data.database, &query).with_eviction(
        EvictionPolicy::unbounded()
            .with_horizon(12)
            .with_max_candidates(8),
    );
    let samples = feed_order_samples(&data.database);
    for cut in [samples.len() / 4, (samples.len() * 3) / 4] {
        assert_resume_equivalence(config, &samples, cut, "truck with horizon+cap");
    }
}

#[test]
fn empty_stream_round_trips() {
    let config = StreamConfig::new(ConvoyQuery::new(2, 3, 1.0), 0.2, 4);
    let stream = ConvoyStream::new(config);
    let bytes = stream.checkpoint_bytes();
    let restored = ConvoyStream::from_checkpoint_bytes(&bytes).unwrap();
    assert_eq!(restored.checkpoint_bytes(), bytes);
    let outcome = restored.finish();
    assert!(outcome.convoys.is_empty());
    assert_eq!(outcome.stats, ConvoyStream::new(config).finish().stats);
}

/// A checkpoint with every section non-trivially populated: open chains,
/// buffered stragglers, a held-back boundary partition, undrained output.
fn busy_checkpoint() -> Vec<u8> {
    let profile = DatasetProfile::cattle().scaled(0.02);
    let data = generate(&profile, 42);
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
    let config = replay_config(&CutsConfig::new(CutsVariant::Cuts), &data.database, &query);
    let mut stream = ConvoyStream::new(config);
    let samples = feed_order_samples(&data.database);
    for (id, p) in &samples[..(samples.len() * 2) / 3] {
        stream.push(*id, p.t, p.x, p.y).unwrap();
    }
    stream.checkpoint_bytes()
}

#[test]
fn every_truncation_fails_cleanly() {
    let bytes = busy_checkpoint();
    assert!(ConvoyStream::from_checkpoint_bytes(&bytes).is_ok());
    for len in 0..bytes.len() {
        let err = ConvoyStream::from_checkpoint_bytes(&bytes[..len])
            .err()
            .unwrap_or_else(|| panic!("a {len}-byte prefix of {} decoded", bytes.len()));
        assert!(
            matches!(
                err,
                CheckpointError::Truncated
                    | CheckpointError::ChecksumMismatch
                    | CheckpointError::BadMagic
            ),
            "prefix {len}: unexpected error {err}"
        );
    }
}

#[test]
fn every_single_byte_flip_fails_cleanly() {
    let bytes = busy_checkpoint();
    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x40;
        let err = ConvoyStream::from_checkpoint_bytes(&corrupt)
            .err()
            .unwrap_or_else(|| panic!("flip at byte {i} decoded"));
        // A flip inside the body (or in the stored CRC itself) is caught by
        // the checksum; a flip in the magic is caught even earlier.
        assert!(
            matches!(
                err,
                CheckpointError::ChecksumMismatch | CheckpointError::BadMagic
            ),
            "flip at byte {i}: unexpected error {err}"
        );
    }
}

#[test]
fn foreign_future_and_padded_files_are_rejected() {
    // Not a checkpoint at all.
    assert!(matches!(
        ConvoyStream::from_checkpoint_bytes(b"PNG\r\n-definitely-not-a-checkpoint"),
        Err(CheckpointError::BadMagic)
    ));
    assert!(matches!(
        ConvoyStream::from_checkpoint_bytes(b""),
        Err(CheckpointError::Truncated)
    ));
    // A valid file stamped with a future format version (CRC recomputed so
    // the version check, not the checksum, is what rejects it).
    let bytes = busy_checkpoint();
    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    let crc = convoy_stream::checkpoint::crc32(&future[..future.len() - 4]);
    let at = future.len() - 4;
    future[at..].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        ConvoyStream::from_checkpoint_bytes(&future),
        Err(CheckpointError::UnsupportedVersion(99))
    ));
    // Trailing garbage after the last section, CRC made consistent again:
    // strict decoding still refuses it.
    let mut padded = bytes[..bytes.len() - 4].to_vec();
    padded.extend_from_slice(b"junk");
    let crc = convoy_stream::checkpoint::crc32(&padded);
    padded.extend_from_slice(&crc.to_le_bytes());
    assert!(ConvoyStream::from_checkpoint_bytes(&padded).is_err());
}

#[test]
fn checkpoint_file_round_trip_is_atomic_and_clean() {
    let dir = std::env::temp_dir().join("convoy-checkpoint-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.snap");

    let profile = DatasetProfile::truck().scaled(0.02);
    let data = generate(&profile, 11);
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
    let config = replay_config(&CutsConfig::new(CutsVariant::Cuts), &data.database, &query);
    let mut stream = ConvoyStream::new(config);
    let samples = feed_order_samples(&data.database);
    let cut = samples.len() / 2;
    for (id, p) in &samples[..cut] {
        stream.push(*id, p.t, p.x, p.y).unwrap();
    }
    let bytes = stream.checkpoint_bytes();
    stream.checkpoint(&path).unwrap();
    assert!(!dir.join("state.snap.tmp").exists(), "no temp file left");
    assert_eq!(std::fs::read(&path).unwrap(), bytes, "file holds the bytes");

    // Restore from disk and finish both streams identically.
    let mut restored = ConvoyStream::restore(&path).unwrap();
    for (id, p) in &samples[cut..] {
        stream.push(*id, p.t, p.x, p.y).unwrap();
        restored.push(*id, p.t, p.x, p.y).unwrap();
    }
    assert_eq!(restored.finish(), stream.finish());

    // A torn file on disk is a clean error.
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(ConvoyStream::restore(&path).is_err());
    // A missing file is an I/O error, not a panic.
    assert!(matches!(
        ConvoyStream::restore(dir.join("never-written.snap")),
        Err(CheckpointError::Io(_))
    ));
}
