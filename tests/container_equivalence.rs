//! Storage-backend equivalence: the `.convoy` columnar container must be an
//! invisible substitution for CSV. For every dataset profile, writing a
//! database to a container and reading it back is **bit-identical** to the
//! CSV round trip; discovery over either backend — every method, every CMC
//! engine — produces the same outcome; and a windowed load over the
//! container reads strictly fewer blocks than a full scan while returning
//! exactly `load().restrict(window)` (the sample-selecting windowed
//! contract, so block pruning can never change an answer).
//!
//! The durability half mirrors `checkpoint_equivalence`: a torn file (every
//! block-boundary prefix), a flipped bit (every byte), a foreign file and a
//! future format version must each produce a clean [`ContainerError`] or
//! typed [`TrajectoryError`] — never a panic, never a silently wrong
//! database.

use convoy_suite::prelude::*;
use trajectory::TrajectoryError;

/// Round-trips `db` through an on-disk container and returns both paths'
/// loads (via the sniffing factory, exactly the CLI path).
fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("convoy-container-equiv-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn container_round_trip_is_bit_identical_on_every_profile() {
    let dir = temp_dir("profiles");
    for name in ProfileName::ALL {
        let profile = DatasetProfile::named(name).scaled(0.02);
        let data = generate(&profile, 20080824);
        let csv = dir.join(format!("{}.csv", name.name()));
        let bin = dir.join(format!("{}.convoy", name.name()));
        traj_datasets::io::write_csv_file(&data.database, &csv).unwrap();
        write_container_file(&data.database, &bin, 64).unwrap();

        let from_csv = open_source(&csv).unwrap().load().unwrap();
        let from_bin = open_source(&bin).unwrap().load().unwrap();
        assert_eq!(from_csv, data.database, "{name:?}: CSV drifted");
        assert_eq!(from_bin, data.database, "{name:?}: container drifted");
        assert_eq!(from_csv, from_bin, "{name:?}: backends disagree");
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&bin).ok();
    }
}

#[test]
fn discovery_is_identical_across_backends_for_every_method_and_engine() {
    let dir = temp_dir("discovery");
    let profile = DatasetProfile::truck().scaled(0.02);
    let data = generate(&profile, 7);
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
    let csv = dir.join("truck.csv");
    let bin = dir.join("truck.convoy");
    traj_datasets::io::write_csv_file(&data.database, &csv).unwrap();
    write_container_file(&data.database, &bin, 16).unwrap();

    let engines = [
        CmcEngine::PerTick,
        CmcEngine::Swept,
        CmcEngine::Parallel { threads: 2 },
        CmcEngine::Sharded { shards: 3 },
    ];
    let mut checked = 0usize;
    for method in [
        Method::Cmc,
        Method::Cuts,
        Method::CutsPlus,
        Method::CutsStar,
    ] {
        let applicable: &[CmcEngine] = if method == Method::Cmc {
            &engines
        } else {
            &engines[..1]
        };
        for &engine in applicable {
            let discovery = Discovery::new(method).with_cmc_engine(engine);
            let from_csv = discovery
                .run_source(&mut *open_source(&csv).unwrap(), &query)
                .unwrap();
            let from_bin = discovery
                .run_source(&mut *open_source(&bin).unwrap(), &query)
                .unwrap();
            assert_eq!(
                from_csv.convoys, from_bin.convoys,
                "{method:?}/{engine:?}: convoys depend on the storage backend"
            );
            assert_eq!(
                from_csv.stats, from_bin.stats,
                "{method:?}/{engine:?}: stats depend on the storage backend"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 7, "every method × engine combination ran");
    std::fs::remove_file(&csv).ok();
    std::fs::remove_file(&bin).ok();
}

#[test]
fn windowed_loads_prune_blocks_and_match_restrict_exactly() {
    let dir = temp_dir("windows");
    let profile = DatasetProfile::cattle().scaled(0.02);
    let data = generate(&profile, 13);
    let bin = dir.join("cattle.convoy");
    write_container_file(&data.database, &bin, 8).unwrap();

    let mut source = open_source(&bin).unwrap();
    let full = source.load().unwrap();
    let full_stats = source.scan_stats();
    assert_eq!(full, data.database);
    assert_eq!(full_stats.blocks_read, full_stats.blocks_total);
    assert!(full_stats.blocks_total > 1, "{full_stats:?}");

    let domain = full.time_domain().unwrap();
    let span = domain.end - domain.start;
    for (lo, hi) in [(0, span / 4), (span / 3, (span * 2) / 3), (span, span)] {
        let window = TimeInterval::new(domain.start + lo, domain.start + hi);
        let windowed = source.load_window(window).unwrap();
        assert_eq!(
            windowed,
            full.restrict(window),
            "window [{lo}, {hi}] diverged from restrict()"
        );
        let stats = source.scan_stats();
        assert!(
            stats.blocks_read < stats.blocks_total,
            "window [{lo}, {hi}] read every block: {stats:?}"
        );
    }
    // A window beyond the domain reads nothing at all.
    let far = TimeInterval::new(domain.end + 1000, domain.end + 2000);
    assert_eq!(source.load_window(far).unwrap(), full.restrict(far));
    assert_eq!(source.scan_stats().blocks_read, 0);
    std::fs::remove_file(&bin).ok();
}

/// A container with several non-trivial blocks, for the corruption suite.
fn busy_container() -> Vec<u8> {
    let profile = DatasetProfile::truck().scaled(0.02);
    let data = generate(&profile, 42);
    let mut bytes = Vec::new();
    traj_datasets::write_container(&data.database, &mut std::io::Cursor::new(&mut bytes), 32)
        .unwrap();
    bytes
}

/// Opens `bytes` as a container through the factory (written to disk, the
/// way every real read happens) and fully loads it.
fn load_bytes(
    dir: &std::path::Path,
    tag: &str,
    bytes: &[u8],
) -> Result<TrajectoryDatabase, TrajectoryError> {
    let path = dir.join(format!("{tag}.convoy"));
    std::fs::write(&path, bytes).unwrap();
    let result = open_source(&path).and_then(|mut s| s.load());
    std::fs::remove_file(&path).ok();
    result
}

#[test]
fn every_block_boundary_truncation_fails_cleanly() {
    let dir = temp_dir("truncate");
    let bytes = busy_container();
    assert!(load_bytes(&dir, "whole", &bytes).is_ok());

    // Every prefix that ends exactly on a block boundary (reconstructed from
    // the reader's own index), plus the boundaries' ±1 neighbours and the
    // bare file header. (`container`'s unit tests already grind through
    // every prefix length; this tier-1 suite pins the structural cuts.)
    let reader = ContainerReader::open(std::io::Cursor::new(bytes.clone())).unwrap();
    let mut cuts = vec![0usize, 1, 8, 19, 20];
    for block in reader.blocks() {
        for delta in [-1i64, 0, 1] {
            let at = block.offset as i64 + delta;
            if at >= 0 && (at as usize) < bytes.len() {
                cuts.push(at as usize);
            }
        }
    }
    for cut in cuts {
        let err = load_bytes(&dir, "cut", &bytes[..cut])
            .err()
            .unwrap_or_else(|| panic!("a {cut}-byte prefix of {} loaded", bytes.len()));
        assert!(
            matches!(
                err,
                TrajectoryError::Format { .. } | TrajectoryError::Io { .. }
            ),
            "prefix {cut}: unexpected error {err:?}"
        );
    }
}

#[test]
fn every_single_byte_flip_fails_cleanly_or_is_caught_at_open() {
    let dir = temp_dir("bitflip");
    let bytes = busy_container();
    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x40;
        // Some flips are caught at open (magic, version, counts, block
        // index); the rest must die on the per-block CRC or the strict
        // decode checks at load. None may panic or return a database.
        assert!(
            load_bytes(&dir, "flip", &corrupt).is_err(),
            "flip at byte {i} of {} produced a database",
            bytes.len()
        );
    }
}

#[test]
fn foreign_future_and_padded_containers_are_rejected() {
    let dir = temp_dir("foreign");
    // Not a container at all.
    let err = load_bytes(&dir, "png", b"PNG\r\n-definitely-not-a-container").unwrap_err();
    assert!(
        matches!(err, TrajectoryError::Format { ref message, .. } if message.contains("magic")),
        "{err:?}"
    );
    // Empty and sub-header files are truncation, not magic errors.
    assert!(load_bytes(&dir, "empty", b"").is_err());
    assert!(load_bytes(&dir, "stub", &busy_container()[..12]).is_err());
    // A future format version is refused by number, not by checksum.
    let mut future = busy_container();
    future[8..12].copy_from_slice(&9u32.to_le_bytes());
    let err = load_bytes(&dir, "future", &future).unwrap_err();
    assert!(
        matches!(err, TrajectoryError::Format { ref message, .. } if message.contains("version")),
        "{err:?}"
    );
    // Trailing garbage after the last block: strict opening refuses it.
    let mut padded = busy_container();
    padded.extend_from_slice(b"junk");
    assert!(load_bytes(&dir, "padded", &padded).is_err());
}
