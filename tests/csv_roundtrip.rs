//! Integration test: the CSV import/export path composes with discovery —
//! exporting a generated dataset and re-importing it yields the same convoys.

use convoy_suite::datasets::io::{read_csv, write_csv};
use convoy_suite::prelude::*;

#[test]
fn discovery_results_survive_a_csv_round_trip() {
    let profile = DatasetProfile::taxi().scaled(0.05);
    let data = generate(&profile, 4242);
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);

    let direct = Discovery::new(Method::CutsStar).run(&data.database, &query);

    let mut buffer = Vec::new();
    write_csv(&data.database, &mut buffer).expect("serialise to CSV");
    let restored = read_csv(buffer.as_slice()).expect("parse CSV");
    assert_eq!(restored, data.database);

    let roundtripped = Discovery::new(Method::CutsStar).run(&restored, &query);
    assert_eq!(direct.convoys, roundtripped.convoys);
}

#[test]
fn csv_import_tolerates_real_world_messiness() {
    // Shuffled rows, duplicate fixes, comments, and a header: the importer
    // must still produce a database the algorithms can run on.
    let csv = "\
object_id,t,x,y
# vehicle 1
1,3,3.0,0.0
1,1,1.0,0.0
1,2,2.0,0.0
1,3,3.5,0.0
2,1,1.0,1.0
2,2,2.0,1.0
2,3,3.0,1.0
3,1,50.0,50.0
3,2,51.0,50.0
3,3,52.0,50.0
";
    let db = read_csv(csv.as_bytes()).expect("parse messy CSV");
    assert_eq!(db.len(), 3);
    let query = ConvoyQuery::new(2, 3, 1.5);
    let outcome = Discovery::new(Method::Cmc).run(&db, &query);
    assert_eq!(outcome.convoys.len(), 1);
    assert_eq!(outcome.convoys[0].objects.len(), 2);
}
