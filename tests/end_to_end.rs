//! End-to-end integration tests: generate synthetic datasets with planted
//! convoys, run every discovery algorithm through the public API, and check
//! both accuracy (planted convoys are rediscovered) and the central
//! correctness claim of the paper (the CuTS family returns exactly the CMC
//! result set).

use convoy_suite::core::query::result_sets_equivalent;
use convoy_suite::prelude::*;

/// Generates a dataset for a profile scaled down to test size, together with
/// its Table 3 query.
fn scenario(
    profile: DatasetProfile,
    seed: u64,
) -> (convoy_suite::datasets::GeneratedDataset, ConvoyQuery) {
    let data = generate(&profile, seed);
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
    (data, query)
}

#[test]
fn planted_convoys_are_rediscovered_by_every_method() {
    let (data, query) = scenario(DatasetProfile::truck().scaled(0.05), 101);
    assert!(
        !data.ground_truth.is_empty(),
        "the scaled profile must still plant convoys"
    );
    for method in [
        Method::Cmc,
        Method::Cuts,
        Method::CutsPlus,
        Method::CutsStar,
    ] {
        let outcome = Discovery::new(method).run(&data.database, &query);
        for planted in &data.ground_truth {
            // The planted groups live longer than k and have at least m
            // members, so every method must report a convoy containing all
            // planted members.
            assert!(
                planted.lifetime() >= query.k as i64,
                "test scenario inconsistent: planted lifetime shorter than k"
            );
            let found = outcome.convoys.iter().any(|c| {
                planted.members.iter().all(|m| c.objects.contains(*m))
                    && c.lifetime() >= query.k as i64
            });
            assert!(
                found,
                "{} missed the planted convoy {:?} (found: {:?})",
                method.name(),
                planted.members,
                outcome.convoys
            );
        }
    }
}

#[test]
fn cuts_family_matches_cmc_on_every_profile() {
    for (profile, seed) in [
        (DatasetProfile::truck().scaled(0.03), 1u64),
        (DatasetProfile::cattle().scaled(0.01), 2),
        (DatasetProfile::car().scaled(0.03), 3),
        (DatasetProfile::taxi().scaled(0.05), 4),
    ] {
        let (data, query) = scenario(profile, seed);
        let reference = Discovery::new(Method::Cmc).run(&data.database, &query);
        for method in [Method::Cuts, Method::CutsPlus, Method::CutsStar] {
            let outcome = Discovery::new(method).run(&data.database, &query);
            assert!(
                result_sets_equivalent(&outcome.convoys, &reference.convoys),
                "{} disagrees with CMC on profile {:?}: {:?} vs {:?}",
                method.name(),
                data.profile.name,
                outcome.convoys,
                reference.convoys
            );
        }
    }
}

#[test]
fn cuts_agrees_with_cmc_under_explicit_parameter_overrides() {
    let (data, query) = scenario(DatasetProfile::car().scaled(0.03), 9);
    let reference = Discovery::new(Method::Cmc).run(&data.database, &query);
    // Even deliberately poor δ / λ choices must not change the result set —
    // they only change the running time (the paper's correctness claim).
    for (delta_factor, lambda) in [(0.05, 2usize), (0.5, 7), (2.0, 25), (4.0, 60)] {
        for method in [Method::Cuts, Method::CutsPlus, Method::CutsStar] {
            let config = CutsConfig::new(method.cuts_variant().unwrap())
                .with_delta(query.e * delta_factor)
                .with_lambda(lambda);
            let outcome = Discovery::new(method)
                .with_config(config)
                .run(&data.database, &query);
            assert!(
                result_sets_equivalent(&outcome.convoys, &reference.convoys),
                "{} with δ-factor {delta_factor} and λ {lambda} diverged from CMC",
                method.name()
            );
        }
    }
}

#[test]
fn global_and_actual_tolerance_modes_agree() {
    let (data, query) = scenario(DatasetProfile::taxi().scaled(0.08), 21);
    let reference = Discovery::new(Method::Cmc).run(&data.database, &query);
    for mode in [ToleranceMode::Global, ToleranceMode::Actual] {
        let config = CutsConfig::new(CutsVariant::CutsStar).with_tolerance_mode(mode);
        let outcome = Discovery::new(Method::CutsStar)
            .with_config(config)
            .run(&data.database, &query);
        assert!(
            result_sets_equivalent(&outcome.convoys, &reference.convoys),
            "tolerance mode {mode:?} changed the result set"
        );
    }
}

#[test]
fn results_are_deterministic_across_runs() {
    let (data, query) = scenario(DatasetProfile::truck().scaled(0.04), 33);
    for method in [Method::Cmc, Method::CutsStar] {
        let a = Discovery::new(method).run(&data.database, &query);
        let b = Discovery::new(method).run(&data.database, &query);
        assert_eq!(
            a.convoys,
            b.convoys,
            "{} is not deterministic",
            method.name()
        );
    }
}

#[test]
fn every_reported_convoy_satisfies_the_query_definition() {
    // Stronger than set equivalence: verify the defining property of
    // Definition 3 directly against the database — at every time point of the
    // convoy's interval, its members must be density-connected w.r.t. e, m.
    let (data, query) = scenario(DatasetProfile::car().scaled(0.04), 55);
    let outcome = Discovery::new(Method::CutsStar).run(&data.database, &query);
    for convoy in &outcome.convoys {
        assert!(convoy.objects.len() >= query.m);
        assert!(convoy.lifetime() >= query.k as i64);
        for t in convoy.interval().iter() {
            let snapshot = data
                .database
                .snapshot(t, convoy_suite::trajectory::SnapshotPolicy::Interpolate);
            let clusters = snapshot_clusters(&snapshot, query.e, query.m);
            let members_connected = clusters
                .iter()
                .any(|cluster| convoy.objects.iter().all(|o| cluster.contains(o)));
            assert!(
                members_connected,
                "convoy {convoy} is not density-connected at t={t}"
            );
        }
    }
}

#[test]
fn mc2_is_not_a_convoy_algorithm() {
    // The appendix-B claim: on data with drifting group membership, MC2
    // either over- or under-reports relative to CMC, depending on θ. Build a
    // scenario with exactly that structure through the public API: a stable
    // pair plus a third object that flickers in and out of the group.
    let mut db = TrajectoryDatabase::new();
    for lane in 0..2u64 {
        let mut builder = TrajectoryBuilder::new();
        for t in 0..40i64 {
            builder.add(t as f64, lane as f64 * 0.5, t);
        }
        db.insert(ObjectId(lane), builder.build().unwrap());
    }
    let mut flicker = TrajectoryBuilder::new();
    for t in 0..40i64 {
        let y = if t % 2 == 0 { 1.0 } else { 80.0 };
        flicker.add(t as f64, y, t);
    }
    db.insert(ObjectId(9), flicker.build().unwrap());

    let query = ConvoyQuery::new(2, 40, 1.5);
    let reference = Discovery::new(Method::Cmc).run(&db, &query);
    assert_eq!(reference.convoys.len(), 1, "CMC finds the stable pair");

    let mut total_errors = 0usize;
    for theta in [0.4, 0.6, 0.8, 1.0] {
        let reported = mc2(
            &db,
            &Mc2Config {
                e: query.e,
                m: query.m,
                theta,
            },
        );
        let accuracy = compare_result_sets(&reported, &reference.convoys, &query);
        total_errors += accuracy.false_positives + accuracy.false_negatives;
    }
    assert!(
        total_errors > 0,
        "MC2 unexpectedly produced exact convoy results for every θ"
    );
}
