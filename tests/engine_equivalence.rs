//! Engine-equivalence property tests: the per-tick baseline, the swept
//! streaming engine, the time-partitioned parallel driver, and a hand-driven
//! incremental [`CmcState`] fold must produce identical normalized convoy
//! sets on randomly generated databases.
//!
//! Two corpus sources feed the properties: the synthetic dataset generator
//! (planted convoys plus background noise, the corpus the paper's figures
//! use) and unconstrained random walks from proptest strategies (no planted
//! structure, exercising degenerate chains, gaps and partial presence).

use convoy_suite::prelude::*;
use proptest::prelude::*;
use trajectory::SnapshotPolicy;

/// Runs every engine plus the manual streaming fold and asserts the
/// normalized result sets are identical (not merely equivalent up to
/// domination — the engines share one fold, so they must agree exactly).
fn assert_engines_agree(db: &TrajectoryDatabase, query: &ConvoyQuery, context: &str) {
    let reference = normalize_convoys(CmcEngine::PerTick.run(db, query), query);
    for engine in [
        CmcEngine::Swept,
        CmcEngine::Parallel { threads: 2 },
        CmcEngine::Parallel { threads: 3 },
        CmcEngine::Parallel { threads: 7 },
    ] {
        let got = normalize_convoys(engine.run(db, query), query);
        assert_eq!(
            got,
            reference,
            "{} engine diverged from per-tick on {context}",
            engine.name()
        );
    }
    // The incremental state driven snapshot-by-snapshot, with mid-stream
    // drains, is the same computation the batch entry points run.
    let mut state = CmcState::new(query);
    let mut streamed = Vec::new();
    for snapshot in db.sweep(SnapshotPolicy::Interpolate) {
        state.ingest_snapshot(&snapshot);
        streamed.extend(state.drain_closed());
    }
    streamed.extend(state.finish());
    assert_eq!(
        normalize_convoys(streamed, query),
        reference,
        "incremental CmcState fold diverged from per-tick on {context}"
    );
}

prop_compose! {
    /// A database of unconstrained random walks with irregular sampling.
    fn arb_walk_db()(num_objects in 2usize..8)
        (tables in proptest::collection::vec(
            (proptest::collection::btree_set(0i64..25, 2..20),
             proptest::collection::vec((-8.0f64..8.0, -8.0f64..8.0), 20)),
            num_objects..num_objects + 1))
        -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        for (i, (times, coords)) in tables.into_iter().enumerate() {
            // Random walk: cumulative steps keep objects close enough that
            // clusters actually form and dissolve.
            let (mut x, mut y) = (0.0, 0.0);
            let pts: Vec<TrajPoint> = times
                .into_iter()
                .zip(coords)
                .map(|(t, (dx, dy))| {
                    x += dx;
                    y += dy;
                    TrajPoint::new(x, y, t)
                })
                .collect();
            db.insert(ObjectId(i as u64), Trajectory::from_points(pts).unwrap());
        }
        db
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_random_walk_databases(
        db in arb_walk_db(),
        m in 2usize..4,
        k in 2usize..6,
        e in 2.0f64..12.0,
    ) {
        let query = ConvoyQuery::new(m, k, e);
        assert_engines_agree(&db, &query, "a random-walk database");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn engines_agree_on_generated_datasets(seed in 0u64..1_000_000) {
        // The paper-shaped corpus: planted convoys, hotspot attraction,
        // irregular sampling and partial presence.
        let profile = DatasetProfile::truck().scaled(0.02);
        let data = generate(&profile, seed);
        let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
        assert_engines_agree(&data.database, &query, "a generated truck dataset");
    }
}

#[test]
fn engines_agree_on_every_dataset_profile() {
    for name in ProfileName::ALL {
        let profile = DatasetProfile::named(name).scaled(0.02);
        let data = generate(&profile, 20080824);
        let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
        assert_engines_agree(&data.database, &query, name.name());
    }
}

#[test]
fn parallel_discovery_outcome_matches_sequential_on_a_planted_dataset() {
    let profile = DatasetProfile::cattle().scaled(0.03);
    let data = generate(&profile, 99);
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
    let sequential = Discovery::new(Method::Cmc).run(&data.database, &query);
    let parallel = Discovery::new(Method::Cmc)
        .with_cmc_engine(CmcEngine::Parallel { threads: 4 })
        .run(&data.database, &query);
    assert_eq!(parallel.convoys, sequential.convoys);
    assert_eq!(parallel.stats.num_convoys, sequential.stats.num_convoys);
}
