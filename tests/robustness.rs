//! Robustness integration tests: the discovery pipeline under GPS noise,
//! heavy down-sampling and degenerate inputs.

use convoy_suite::core::query::result_sets_equivalent;
use convoy_suite::datasets::{add_gps_noise, downsample, stride_sample};
use convoy_suite::prelude::*;

#[test]
fn planted_convoys_survive_moderate_gps_noise() {
    let profile = DatasetProfile::truck().scaled(0.05);
    let data = generate(&profile, 303);
    // Planted members stay within e/2 of their leader; noise bounded by
    // e/(4·√2) keeps every pairwise distance within e.
    let noise = profile.e / (4.0 * std::f64::consts::SQRT_2);
    let noisy = add_gps_noise(&data.database, noise, 1);
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
    let outcome = Discovery::new(Method::CutsStar).run(&noisy, &query);
    for planted in &data.ground_truth {
        let found = outcome.convoys.iter().any(|c| {
            planted.members.iter().all(|m| c.objects.contains(*m)) && c.lifetime() >= query.k as i64
        });
        assert!(
            found,
            "noise of {noise:.2} broke the planted convoy {planted:?}"
        );
    }
}

#[test]
fn cuts_still_matches_cmc_on_noisy_downsampled_data() {
    let profile = DatasetProfile::car().scaled(0.03);
    let data = generate(&profile, 404);
    let perturbed = downsample(&add_gps_noise(&data.database, profile.e * 0.2, 5), 0.3, 6);
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
    let reference = Discovery::new(Method::Cmc).run(&perturbed, &query);
    for method in [Method::Cuts, Method::CutsPlus, Method::CutsStar] {
        let outcome = Discovery::new(method).run(&perturbed, &query);
        assert!(
            result_sets_equivalent(&outcome.convoys, &reference.convoys),
            "{} diverged from CMC on perturbed data",
            method.name()
        );
    }
}

#[test]
fn coarse_reporting_intervals_are_handled() {
    // Stride-sampling emulates the Taxi feed ("some taxis reported their
    // locations every three minutes"): large gaps between samples, which CMC
    // bridges by interpolation and CuTS by the time-interval bookkeeping of
    // its simplified segments.
    let profile = DatasetProfile::taxi().scaled(0.1);
    let data = generate(&profile, 505);
    let coarse = stride_sample(&data.database, 5);
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
    let reference = Discovery::new(Method::Cmc).run(&coarse, &query);
    let outcome = Discovery::new(Method::CutsStar).run(&coarse, &query);
    assert!(result_sets_equivalent(&outcome.convoys, &reference.convoys));
}

#[test]
fn degenerate_queries_do_not_panic() {
    let profile = DatasetProfile::truck().scaled(0.02);
    let data = generate(&profile, 606);
    let db = &data.database;
    let domain_len = db.time_domain().unwrap().num_points();

    // k longer than the domain: no convoy can exist.
    let too_long = ConvoyQuery::new(2, (domain_len + 10) as usize, profile.e);
    for method in [
        Method::Cmc,
        Method::Cuts,
        Method::CutsPlus,
        Method::CutsStar,
    ] {
        assert!(Discovery::new(method).run(db, &too_long).convoys.is_empty());
    }

    // m larger than the object count: no convoy can exist.
    let too_big = ConvoyQuery::new(db.len() + 1, 2, profile.e);
    assert!(Discovery::new(Method::CutsStar)
        .run(db, &too_big)
        .convoys
        .is_empty());

    // A tiny e so nothing is density-connected.
    let too_tight = ConvoyQuery::new(2, 2, 1e-9);
    assert!(Discovery::new(Method::Cmc)
        .run(db, &too_tight)
        .convoys
        .is_empty());

    // An empty database.
    let empty = TrajectoryDatabase::new();
    let query = ConvoyQuery::new(2, 2, 1.0);
    for method in [Method::Cmc, Method::CutsStar] {
        assert!(Discovery::new(method)
            .run(&empty, &query)
            .convoys
            .is_empty());
    }

    // A database of single-sample trajectories (k = 1, m = 2): every pair of
    // co-located loners forms a one-instant convoy; nothing may panic.
    let mut singles = TrajectoryDatabase::new();
    for i in 0..4u64 {
        singles.insert(
            ObjectId(i),
            Trajectory::from_tuples([(i as f64 * 0.1, 0.0, 0)]).unwrap(),
        );
    }
    let instant_query = ConvoyQuery::new(2, 1, 1.0);
    let cmc_out = Discovery::new(Method::Cmc).run(&singles, &instant_query);
    let cuts_out = Discovery::new(Method::CutsStar).run(&singles, &instant_query);
    assert!(result_sets_equivalent(&cmc_out.convoys, &cuts_out.convoys));
    assert!(!cmc_out.convoys.is_empty());
}
