//! Shard-equivalence property tests: the spatially sharded convoy driver
//! must produce output **bit-identical** to sequential CMC — the same
//! `Vec<Convoy>` before any normalization, convoy for convoy, in the same
//! order — and identical normalized sets to every other engine.
//!
//! Three corpus sources feed the properties:
//!
//! 1. unconstrained random walks (no planted structure: degenerate chains,
//!    gaps, partial presence);
//! 2. the paper-shaped generated dataset profiles (planted convoys, hotspot
//!    attraction, irregular sampling);
//! 3. *directed boundary-straddling* fixtures: convoys built so their
//!    clusters cross a shard edge at every tick, contested border objects
//!    sitting exactly `e` from cores in two different shards, and shard
//!    strips narrower than `e` — the cases where a sloppy halo exchange
//!    would drop, duplicate or mis-assign cluster members.
//!
//! A fixed-seed regression corpus lives in
//! `proptest-regressions/shard_equivalence.txt`; every seed recorded there
//! is replayed verbatim by `replays_checked_in_regression_seeds` (the
//! vendored proptest stand-in has no shrink-file support, so the harness
//! reads the file itself). The CI release job runs this suite under
//! `--release` to catch optimized-build divergence.

use convoy_suite::prelude::*;
use proptest::prelude::*;

/// Shard counts exercised everywhere: several co-prime counts, a count
/// typically larger than the object count, and "one per core".
const SHARD_COUNTS: [usize; 5] = [2, 3, 5, 16, 0];

/// Asserts the sharded driver is bit-identical to the sequential sweep on
/// `db` (raw, un-normalized output) and agrees with the per-tick baseline
/// after normalization.
fn assert_sharded_agrees(db: &TrajectoryDatabase, query: &ConvoyQuery, context: &str) {
    let sequential = CmcEngine::Swept.run(db, query);
    for shards in SHARD_COUNTS {
        let sharded = CmcEngine::Sharded { shards }.run(db, query);
        assert_eq!(
            sharded, sequential,
            "sharded ({shards} shards) not bit-identical to swept on {context}"
        );
    }
    let reference = normalize_convoys(CmcEngine::PerTick.run(db, query), query);
    assert_eq!(
        normalize_convoys(sequential, query),
        reference,
        "swept diverged from per-tick on {context}"
    );
}

prop_compose! {
    /// A database of unconstrained random walks with irregular sampling
    /// (mirrors the engine-equivalence harness).
    fn arb_walk_db()(num_objects in 2usize..8)
        (tables in proptest::collection::vec(
            (proptest::collection::btree_set(0i64..25, 2..20),
             proptest::collection::vec((-8.0f64..8.0, -8.0f64..8.0), 20)),
            num_objects..num_objects + 1))
        -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        for (i, (times, coords)) in tables.into_iter().enumerate() {
            let (mut x, mut y) = (0.0, 0.0);
            let pts: Vec<TrajPoint> = times
                .into_iter()
                .zip(coords)
                .map(|(t, (dx, dy))| {
                    x += dx;
                    y += dy;
                    TrajPoint::new(x, y, t)
                })
                .collect();
            db.insert(ObjectId(i as u64), Trajectory::from_points(pts).unwrap());
        }
        db
    }
}

prop_compose! {
    /// A directed adversarial database: `lanes` objects convoy along x with
    /// a spread wider than one shard strip, so the convoy's cluster
    /// straddles an internal shard edge at (almost) every tick; extra
    /// objects wander as noise and a far anchor keeps the bounding box wide
    /// so the grid splits the x axis.
    fn arb_straddling_db()(lanes in 3usize..6, ticks in 12i64..30,
                           spread in 0.5f64..1.2, drift in 0.6f64..1.4)
        (noise in proptest::collection::vec((-5.0f64..40.0, 2.0f64..6.0), 2..5),
         lanes in lanes..lanes + 1, ticks in ticks..ticks + 1,
         spread in spread..spread + 1e-9, drift in drift..drift + 1e-9)
        -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        let mut next = 0u64;
        for lane in 0..lanes {
            db.insert(
                ObjectId(next),
                Trajectory::from_points((0..ticks).map(|t| TrajPoint::new(
                    t as f64 * drift + lane as f64 * spread,
                    lane as f64 * 0.3,
                    t,
                )).collect()).unwrap(),
            );
            next += 1;
        }
        // Wandering noise objects near (but not in) the convoy's corridor.
        for (x0, y0) in noise {
            db.insert(
                ObjectId(next),
                Trajectory::from_points((0..ticks).map(|t| TrajPoint::new(
                    x0 + t as f64 * 0.9,
                    y0 + (t % 4) as f64 * 0.5,
                    t,
                )).collect()).unwrap(),
            );
            next += 1;
        }
        // Anchor keeping the box wider than tall without joining anything.
        db.insert(
            ObjectId(next),
            Trajectory::from_points(
                (0..ticks).map(|t| TrajPoint::new(t as f64, 15.0, t)).collect(),
            ).unwrap(),
        );
        db
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn sharded_agrees_on_random_walk_databases(
        db in arb_walk_db(),
        m in 2usize..4,
        k in 2usize..6,
        e in 2.0f64..12.0,
    ) {
        let query = ConvoyQuery::new(m, k, e);
        assert_sharded_agrees(&db, &query, "a random-walk database");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_agrees_on_boundary_straddling_convoys(
        db in arb_straddling_db(),
        k in 3usize..8,
    ) {
        let query = ConvoyQuery::new(3, k, 1.5);
        assert_sharded_agrees(&db, &query, "a boundary-straddling convoy database");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn sharded_agrees_on_generated_datasets(seed in 0u64..1_000_000) {
        let profile = DatasetProfile::truck().scaled(0.02);
        let data = generate(&profile, seed);
        let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
        assert_sharded_agrees(&data.database, &query, "a generated truck dataset");
    }
}

#[test]
fn sharded_agrees_on_every_dataset_profile() {
    for name in ProfileName::ALL {
        let profile = DatasetProfile::named(name).scaled(0.02);
        let data = generate(&profile, 20080824);
        let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
        assert_sharded_agrees(&data.database, &query, name.name());
    }
}

/// The hand-built acceptance fixture: one convoy whose cluster straddles a
/// shard edge at *every* tick of the window. Three objects march along x
/// spread over ~1.4 units while 31 one-unit-wide strips cover the domain;
/// the middle object also sits exactly on an internal grid line at integer
/// ticks.
#[test]
fn convoy_crossing_a_shard_edge_every_tick_is_reported_intact() {
    let ticks = 32i64;
    let mut db = TrajectoryDatabase::new();
    for lane in 0..3u64 {
        db.insert(
            ObjectId(lane),
            Trajectory::from_points(
                (0..ticks)
                    .map(|t| TrajPoint::new(t as f64 + lane as f64 * 0.7, lane as f64 * 0.3, t))
                    .collect(),
            )
            .unwrap(),
        );
    }
    // A loner pinning the bounding box (wider than tall → vertical strips).
    db.insert(
        ObjectId(9),
        Trajectory::from_points(
            (0..ticks)
                .map(|t| TrajPoint::new(t as f64, 20.0, t))
                .collect(),
        )
        .unwrap(),
    );

    let query = ConvoyQuery::new(3, 30, 1.5);
    let sequential = CmcEngine::Swept.run(&db, &query);
    for shards in [31, 16, 7] {
        let sharded = CmcEngine::Sharded { shards }.run(&db, &query);
        assert_eq!(sharded, sequential, "{shards} shards broke the convoy");
    }
    let convoys = normalize_convoys(sequential, &query);
    assert_eq!(convoys.len(), 1);
    assert_eq!(convoys[0].start, 0);
    assert_eq!(convoys[0].end, ticks - 1);
    assert_eq!(convoys[0].objects.len(), 3);
}

/// Sharding must also compose with the discovery facade (timings, stats and
/// normalized output), not only with the raw engine entry point.
#[test]
fn sharded_discovery_outcome_matches_sequential_on_a_planted_dataset() {
    let profile = DatasetProfile::cattle().scaled(0.03);
    let data = generate(&profile, 99);
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
    let sequential = Discovery::new(Method::Cmc).run(&data.database, &query);
    let sharded = Discovery::new(Method::Cmc)
        .with_cmc_engine(CmcEngine::Sharded { shards: 6 })
        .run(&data.database, &query);
    assert_eq!(sharded.convoys, sequential.convoys);
    assert_eq!(sharded.stats.num_convoys, sequential.stats.num_convoys);
}

/// Replays the fixed seeds recorded in
/// `proptest-regressions/shard_equivalence.txt` against the random-walk and
/// boundary-straddling generators. The vendored proptest stand-in derives
/// its seed from the test name and does not read shrink files, so this test
/// gives the checked-in corpus teeth: add a failing seed to the file and it
/// stays covered forever, in both debug and `--release` CI runs.
#[test]
fn replays_checked_in_regression_seeds() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/proptest-regressions/shard_equivalence.txt"
    );
    let corpus = std::fs::read_to_string(path).expect("regression corpus must be checked in");
    let mut replayed = 0u32;
    for line in corpus.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let seed = line
            .strip_prefix("cc ")
            .and_then(|rest| {
                let token = rest.split_whitespace().next()?;
                token.strip_prefix("0x").map_or_else(
                    || token.parse().ok(),
                    |hex| u64::from_str_radix(hex, 16).ok(),
                )
            })
            .unwrap_or_else(|| panic!("malformed regression line: `{line}`"));
        let mut rng = proptest::new_rng(seed);
        // Same draw order as the proptest bodies above.
        let db = arb_walk_db().sample(&mut rng);
        let m = (2usize..4).sample(&mut rng);
        let k = (2usize..6).sample(&mut rng);
        let e = (2.0f64..12.0).sample(&mut rng);
        assert_sharded_agrees(
            &db,
            &ConvoyQuery::new(m, k, e),
            &format!("regression seed {seed:#x} (walk)"),
        );
        let db = arb_straddling_db().sample(&mut rng);
        let k = (3usize..8).sample(&mut rng);
        assert_sharded_agrees(
            &db,
            &ConvoyQuery::new(3, k, 1.5),
            &format!("regression seed {seed:#x} (straddling)"),
        );
        replayed += 1;
    }
    assert!(
        replayed >= 4,
        "regression corpus unexpectedly small: {replayed}"
    );
}
