//! Stream-equivalence property tests: replaying a finite database through
//! the `convoy_stream` pipeline must reproduce batch CuTS discovery
//! **bit-identically** — the raw refinement output (order included), the
//! refinement fold's counters, and the normalised result set — even though
//! the streaming filter simplifies per λ-partition window and its clusters
//! and candidates may therefore differ from the batch filter's. The
//! coverage-fold restriction theorem (`convoy_core::cuts::refine`) is what
//! makes the claim provable rather than statistical; these tests lock it in
//! over random walks and every generated dataset profile.
//!
//! Finite-horizon runs are *not* equivalent to batch by design; for those
//! the harness asserts the safety contract instead: no reported convoy may
//! bridge a feed gap larger than the horizon, and every reported convoy is
//! density-connected in the original data at every tick of its interval.

use convoy_core::cuts::filter::filter;
use convoy_core::{refine_partitions, CutsConfig};
use convoy_suite::prelude::*;
use proptest::prelude::*;

/// Replays `db` through the stream for every CuTS method and asserts the
/// bit-identity contract against the batch pipeline.
fn assert_stream_matches_batch(db: &TrajectoryDatabase, query: &ConvoyQuery, context: &str) {
    for method in [Method::Cuts, Method::CutsPlus, Method::CutsStar] {
        let discovery = Discovery::new(method);
        let outcome = discovery.replay_stream(db, query);

        // Raw refinement output: identical Vec<Convoy>, closure order
        // included, against the batch coverage fold over the batch filter's
        // partitions.
        let variant = method.cuts_variant().expect("CuTS methods only");
        let batch_filter = filter(db, query, &CutsConfig::new(variant));
        let (batch_raw, batch_fold) = refine_partitions(db, query, &batch_filter.partitions);
        assert_eq!(
            outcome.convoys, batch_raw,
            "{method} raw stream output diverged from batch refinement on {context}"
        );

        // Fold counters agree bit-for-bit (the "stream stats agree with
        // batch candidate counts" half of the contract: peak open
        // candidates, ticks ingested, closures).
        assert_eq!(
            outcome.stats.fold, batch_fold,
            "{method} fold counters diverged on {context}"
        );
        assert_eq!(
            outcome.stats.candidates_evicted, 0,
            "unbounded policy never evicts"
        );

        // The normalised result set equals the batch façade's.
        let batch = discovery.run(db, query);
        assert_eq!(
            normalize_convoys(outcome.convoys, query),
            batch.convoys,
            "{method} normalised stream output diverged from Discovery on {context}"
        );
        assert_eq!(outcome.stats.fold, batch.stats.fold);
    }
}

prop_compose! {
    /// A database of unconstrained random walks with irregular sampling —
    /// partial presence, sample gaps, degenerate single-sample objects.
    fn arb_walk_db()(num_objects in 2usize..7)
        (tables in proptest::collection::vec(
            (proptest::collection::btree_set(0i64..30, 1..18),
             proptest::collection::vec((-6.0f64..6.0, -6.0f64..6.0), 18)),
            num_objects..num_objects + 1))
        -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        for (i, (times, coords)) in tables.into_iter().enumerate() {
            let (mut x, mut y) = (0.0, 0.0);
            let pts: Vec<TrajPoint> = times
                .into_iter()
                .zip(coords)
                .map(|(t, (dx, dy))| {
                    x += dx;
                    y += dy;
                    TrajPoint::new(x, y, t)
                })
                .collect();
            db.insert(ObjectId(i as u64), Trajectory::from_points(pts).unwrap());
        }
        db
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn stream_matches_batch_on_random_walk_databases(
        db in arb_walk_db(),
        m in 2usize..4,
        k in 2usize..6,
        e in 2.0f64..10.0,
        lambda in 2usize..9,
    ) {
        // Pin λ so the property also exercises partition lengths the
        // automatic guideline would not pick.
        let query = ConvoyQuery::new(m, k, e);
        let discovery = Discovery::new(Method::Cuts)
            .with_config(CutsConfig::new(CutsVariant::Cuts).with_lambda(lambda));
        let outcome = discovery.replay_stream(&db, &query);
        let batch_filter = filter(&db, &query, discovery.config());
        let (batch_raw, batch_fold) = refine_partitions(&db, &query, &batch_filter.partitions);
        prop_assert_eq!(outcome.convoys, batch_raw, "raw divergence on a random walk db");
        prop_assert_eq!(outcome.stats.fold, batch_fold, "fold counter divergence");
    }

    #[test]
    fn stream_matches_batch_with_auto_parameters(db in arb_walk_db(), seed_k in 2usize..5) {
        let query = ConvoyQuery::new(2, seed_k, 5.0);
        assert_stream_matches_batch(&db, &query, "a random-walk database");
    }
}

#[test]
fn stream_matches_batch_on_every_dataset_profile() {
    for name in ProfileName::ALL {
        let profile = DatasetProfile::named(name).scaled(0.02);
        let data = generate(&profile, 20080824);
        let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
        assert_stream_matches_batch(&data.database, &query, name.name());
    }
}

#[test]
fn stream_matches_batch_on_generated_seeds() {
    for seed in [1u64, 7, 99, 20260731] {
        let profile = DatasetProfile::truck().scaled(0.02);
        let data = generate(&profile, seed);
        let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
        assert_stream_matches_batch(&data.database, &query, "a generated truck dataset");
    }
}

/// Pushes a tick of co-moving pair samples.
fn push_pair(stream: &mut ConvoyStream, t: i64) {
    stream.push(ObjectId(1), t, t as f64, 0.0).unwrap();
    stream.push(ObjectId(2), t, t as f64, 0.5).unwrap();
}

#[test]
fn no_convoy_bridges_a_feed_gap_larger_than_the_horizon() {
    // The pair convoys on [0, 9], the feed goes dark for 12 ticks
    // (> horizon = 8), then the pair convoys again on [22, 31].
    let query = ConvoyQuery::new(2, 3, 1.0);
    let config =
        StreamConfig::new(query, 0.2, 4).with_eviction(EvictionPolicy::unbounded().with_horizon(8));
    let mut stream = ConvoyStream::new(config);
    for t in 0..10 {
        push_pair(&mut stream, t);
    }
    for t in 22..32 {
        push_pair(&mut stream, t);
    }
    let outcome = stream.finish();
    assert_eq!(outcome.convoys.len(), 2, "one convoy per side of the gap");
    for convoy in &outcome.convoys {
        assert!(
            convoy.end <= 9 || convoy.start >= 22,
            "convoy {convoy} bridges the evicted gap"
        );
    }
    // A gap of exactly the horizon *is* bridged (eviction is strict): some
    // chain covers the interpolated middle of the silence, even though the
    // same horizon also caps every chain's lifetime at 12 ticks.
    let config = StreamConfig::new(query, 0.2, 4)
        .with_eviction(EvictionPolicy::unbounded().with_horizon(12));
    let mut stream = ConvoyStream::new(config);
    for t in 0..10 {
        push_pair(&mut stream, t);
    }
    for t in 22..32 {
        push_pair(&mut stream, t);
    }
    let outcome = stream.finish();
    assert!(
        outcome.convoys.iter().any(|c| c.interval().contains(15)),
        "a gap of exactly the horizon must interpolate: {:?}",
        outcome.convoys
    );
    assert!(outcome.convoys.iter().all(|c| c.lifetime() <= 12));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn horizon_runs_never_bridge_gaps_and_stay_density_connected(
        db in arb_walk_db(),
        horizon in 2i64..6,
        lambda in 2usize..6,
    ) {
        // Shift the second half of every trajectory far forward in time so
        // the feed contains a global gap wider than any tested horizon.
        let gap_at = 15i64;
        let shift = 40i64;
        let mut shifted = TrajectoryDatabase::new();
        for (id, traj) in db.iter() {
            let pts: Vec<TrajPoint> = traj
                .points()
                .iter()
                .map(|p| {
                    if p.t >= gap_at {
                        TrajPoint::new(p.x, p.y, p.t + shift)
                    } else {
                        *p
                    }
                })
                .collect();
            shifted.insert(id, Trajectory::from_points(pts).unwrap());
        }

        let query = ConvoyQuery::new(2, 2, 6.0);
        let config = StreamConfig::new(query, 0.5, lambda)
            .with_eviction(EvictionPolicy::unbounded().with_horizon(horizon));
        let mut stream = ConvoyStream::new(config);
        let mut samples = shifted.all_samples();
        samples.sort_by_key(|(id, p)| (p.t, *id));
        for (id, p) in samples {
            stream.push(id, p.t, p.x, p.y).unwrap();
        }
        let outcome = stream.finish();
        for convoy in &outcome.convoys {
            // Safety half of the contract: nothing spans the evicted gap…
            prop_assert!(
                convoy.end < gap_at + shift || convoy.start >= gap_at,
                "convoy {} bridges the gap", convoy
            );
            // …no chain outlives the horizon…
            prop_assert!(convoy.lifetime() <= horizon);
            // …and everything reported is a real convoy of the original
            // data: density-connected at every tick of its interval.
            for t in convoy.interval().iter() {
                let snapshot = shifted.snapshot(t, convoy_suite::trajectory::SnapshotPolicy::Interpolate);
                let clusters = snapshot_clusters(&snapshot, query.e, query.m);
                prop_assert!(
                    clusters.iter().any(|cl| convoy.objects.iter().all(|o| cl.contains(o))),
                    "convoy {} not density-connected at t={}", convoy, t
                );
            }
        }
    }
}

#[test]
fn max_candidates_caps_the_working_set_mid_tick() {
    // Five disjoint pairs convoy simultaneously: with max_candidates = 2 the
    // fold must close the excess chains the moment a tick opens them.
    let query = ConvoyQuery::new(2, 2, 1.0);
    let config = StreamConfig::new(query, 0.2, 3)
        .with_eviction(EvictionPolicy::unbounded().with_max_candidates(2));
    let mut stream = ConvoyStream::new(config);
    for t in 0..12i64 {
        for pair in 0..5u64 {
            let base = pair as f64 * 100.0;
            stream.push(ObjectId(pair * 2), t, base, t as f64).unwrap();
            stream
                .push(ObjectId(pair * 2 + 1), t, base + 0.5, t as f64)
                .unwrap();
        }
    }
    let outcome = stream.finish();
    // The cap was hit on the very first clustered tick (5 fresh chains
    // against a capacity of 2) and on every tick after it.
    assert!(
        outcome.stats.candidates_evicted > 0,
        "capacity eviction must fire mid-tick"
    );
    // Chains churn under eviction: old chains close (and report, since they
    // satisfy k) while fresh ones reopen, so the output holds many short
    // fragments instead of five long convoys.
    assert!(
        outcome.convoys.len() > 5,
        "eviction churn should fragment the convoys, got {:?}",
        outcome.convoys
    );
    assert!(outcome.convoys.iter().all(|c| c.satisfies(&query)));
    // The exact working-set bound is locked in at the CmcState level
    // (`evict_to_capacity` unit tests); here the observable is that the
    // *carried* set stays within capacity: at most `max` chains survive any
    // tick, so no reported convoy set at one closing tick exceeds it.
    let mut closures_per_end: std::collections::BTreeMap<i64, usize> = Default::default();
    for convoy in &outcome.convoys {
        *closures_per_end.entry(convoy.end).or_default() += 1;
    }
    assert!(
        closures_per_end.values().all(|&n| n <= 2 + 3),
        "at most capacity + one tick's evictions can close per tick"
    );
}

/// Replays the fixed seeds recorded in
/// `proptest-regressions/stream_equivalence.txt` against the random-walk
/// generator, mirroring the shard-equivalence corpus harness: the vendored
/// proptest stand-in derives its seed from the test name and does not read
/// shrink files, so this test gives the checked-in corpus teeth — add a
/// failing seed to the file and it stays covered forever, in both debug and
/// `--release` CI runs.
#[test]
fn replays_checked_in_regression_seeds() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/proptest-regressions/stream_equivalence.txt"
    );
    let corpus = std::fs::read_to_string(path).expect("regression corpus must be checked in");
    let mut replayed = 0u32;
    for line in corpus.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let seed = line
            .strip_prefix("cc ")
            .and_then(|rest| {
                let token = rest.split_whitespace().next()?;
                token.strip_prefix("0x").map_or_else(
                    || token.parse().ok(),
                    |hex| u64::from_str_radix(hex, 16).ok(),
                )
            })
            .unwrap_or_else(|| panic!("malformed regression line: `{line}`"));
        let mut rng = proptest::new_rng(seed);
        // Same draw order as `stream_matches_batch_on_random_walk_databases`.
        let db = arb_walk_db().sample(&mut rng);
        let m = (2usize..4).sample(&mut rng);
        let k = (2usize..6).sample(&mut rng);
        let e = (2.0f64..10.0).sample(&mut rng);
        let lambda = (2usize..9).sample(&mut rng);
        let query = ConvoyQuery::new(m, k, e);
        let discovery = Discovery::new(Method::Cuts)
            .with_config(CutsConfig::new(CutsVariant::Cuts).with_lambda(lambda));
        let outcome = discovery.replay_stream(&db, &query);
        let batch_filter = filter(&db, &query, discovery.config());
        let (batch_raw, batch_fold) = refine_partitions(&db, &query, &batch_filter.partitions);
        assert_eq!(
            outcome.convoys, batch_raw,
            "raw divergence replaying regression seed {seed:#x}"
        );
        assert_eq!(
            outcome.stats.fold, batch_fold,
            "fold counter divergence replaying regression seed {seed:#x}"
        );
        // Same draw order as `stream_matches_batch_with_auto_parameters`.
        let db = arb_walk_db().sample(&mut rng);
        let seed_k = (2usize..5).sample(&mut rng);
        assert_stream_matches_batch(
            &db,
            &ConvoyQuery::new(2, seed_k, 5.0),
            &format!("regression seed {seed:#x} (auto parameters)"),
        );
        replayed += 1;
    }
    assert!(
        replayed >= 4,
        "regression corpus unexpectedly small: {replayed}"
    );
}

#[test]
fn out_of_order_samples_are_rejected_and_do_not_corrupt_equivalence() {
    // Build a valid feed, inject stragglers that must all be rejected, and
    // check the outcome still matches the clean replay.
    let profile = DatasetProfile::truck().scaled(0.02);
    let data = generate(&profile, 11);
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
    let discovery = Discovery::new(Method::Cuts);
    let clean = discovery.replay_stream(&data.database, &query);

    let cuts = CutsConfig::new(CutsVariant::Cuts);
    let delta = convoy_core::auto_delta(&data.database, query.e);
    let simplified = convoy_core::cuts::filter::simplify_database(&data.database, &cuts, delta);
    let lambda = convoy_core::auto_lambda(simplified.iter().map(|(_, s)| s), query.k);

    let mut stream = ConvoyStream::new(StreamConfig::new(query, delta, lambda));
    let mut samples = data.database.all_samples();
    samples.sort_by_key(|(id, p)| (p.t, *id));
    let mut rejected = 0;
    for (i, (id, p)) in samples.iter().enumerate() {
        stream.push(*id, p.t, p.x, p.y).unwrap();
        if i % 50 == 25 {
            // A sample from the distant past must bounce.
            if stream.push(*id, p.t - 1000, p.x, p.y).is_err() {
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "the test must actually exercise rejection");
    let outcome = stream.finish();
    assert_eq!(outcome.convoys, clean.convoys);
    assert_eq!(outcome.stats.fold, clean.stats.fold);
}
