//! Offline stand-in for `assert_cmd` (see `vendor/README.md`).
//!
//! Supports the `Command::cargo_bin("name")?.args(..).assert()` pattern with
//! exit-code assertions plus substring assertions on captured stdout/stderr.
//! Binaries are located the same way assert_cmd locates them: next to the
//! test executable's target directory.

use std::ffi::OsStr;
use std::path::PathBuf;
use std::process::Output;

/// Error returned when a requested cargo binary cannot be located.
#[derive(Debug)]
pub struct CargoError(String);

impl std::fmt::Display for CargoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CargoError {}

/// A `std::process::Command` wrapper with an `assert()` terminal.
pub struct Command {
    inner: std::process::Command,
    stdin: Option<Vec<u8>>,
}

impl Command {
    /// Locates the binary target `name` of the current package, as built by
    /// the enclosing `cargo test` invocation.
    pub fn cargo_bin(name: impl AsRef<str>) -> Result<Self, CargoError> {
        let name = name.as_ref();
        // Tests run from <target>/<profile>/deps/<test-bin>; package binaries
        // live one directory up.
        let exe = std::env::current_exe()
            .map_err(|e| CargoError(format!("cannot locate test executable: {e}")))?;
        let profile_dir = exe
            .parent() // deps/
            .and_then(|p| p.parent()) // <profile>/
            .map(PathBuf::from)
            .ok_or_else(|| CargoError("test executable has no target dir".into()))?;
        let mut candidate = profile_dir.join(name);
        candidate.set_extension(std::env::consts::EXE_EXTENSION);
        if !candidate.exists() {
            return Err(CargoError(format!(
                "no binary `{name}` at {}",
                candidate.display()
            )));
        }
        Ok(Command {
            inner: std::process::Command::new(candidate),
            stdin: None,
        })
    }

    /// Appends one argument.
    pub fn arg(mut self, arg: impl AsRef<OsStr>) -> Self {
        self.inner.arg(arg);
        self
    }

    /// Appends several arguments.
    pub fn args<I, S>(mut self, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<OsStr>,
    {
        self.inner.args(args);
        self
    }

    /// Provides bytes to feed to the child's stdin (mirroring
    /// `assert_cmd`'s API of the same name).
    pub fn write_stdin(mut self, input: impl Into<Vec<u8>>) -> Self {
        self.stdin = Some(input.into());
        self
    }

    /// Runs the command, captures its output, and returns the assertion
    /// handle. Panics if the process cannot be spawned at all.
    pub fn assert(mut self) -> Assert {
        let output = match self.stdin.take() {
            None => self
                .inner
                .output()
                .unwrap_or_else(|e| panic!("failed to spawn {:?}: {e}", self.inner)),
            Some(bytes) => {
                use std::io::Write;
                use std::process::Stdio;
                self.inner
                    .stdin(Stdio::piped())
                    .stdout(Stdio::piped())
                    .stderr(Stdio::piped());
                let mut child = self
                    .inner
                    .spawn()
                    .unwrap_or_else(|e| panic!("failed to spawn {:?}: {e}", self.inner));
                // Feed stdin from a separate thread (as the real assert_cmd
                // does): writing to completion before draining stdout would
                // deadlock once both sides exceed the OS pipe buffer.
                let mut stdin = child.stdin.take().expect("stdin was piped");
                let writer = std::thread::spawn(move || {
                    // A child that stops reading early (closed pipe) is a
                    // valid outcome to assert on, not a harness error.
                    let _ = stdin.write_all(&bytes);
                });
                let output = child
                    .wait_with_output()
                    .unwrap_or_else(|e| panic!("failed to wait for {:?}: {e}", self.inner));
                writer.join().expect("stdin writer thread panicked");
                output
            }
        };
        Assert { output }
    }
}

/// Assertions over a finished process, mirroring `assert_cmd::assert::Assert`.
pub struct Assert {
    output: Output,
}

impl Assert {
    /// The finished process's raw output, mirroring
    /// `assert_cmd::assert::Assert::get_output`.
    pub fn get_output(&self) -> &Output {
        &self.output
    }

    fn describe(&self) -> String {
        format!(
            "status: {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            self.output.status.code(),
            String::from_utf8_lossy(&self.output.stdout),
            String::from_utf8_lossy(&self.output.stderr),
        )
    }

    /// Asserts the process exited with status 0.
    #[track_caller]
    pub fn success(self) -> Self {
        assert!(
            self.output.status.success(),
            "expected success\n{}",
            self.describe()
        );
        self
    }

    /// Asserts the process exited with a non-zero status.
    #[track_caller]
    pub fn failure(self) -> Self {
        assert!(
            !self.output.status.success(),
            "expected failure\n{}",
            self.describe()
        );
        self
    }

    /// Asserts the exact exit code.
    #[track_caller]
    pub fn code(self, expected: i32) -> Self {
        assert_eq!(
            self.output.status.code(),
            Some(expected),
            "expected exit code {expected}\n{}",
            self.describe()
        );
        self
    }

    /// Asserts that captured stdout contains `needle`.
    #[track_caller]
    pub fn stdout_contains(self, needle: impl AsRef<str>) -> Self {
        let stdout = String::from_utf8_lossy(&self.output.stdout).into_owned();
        assert!(
            stdout.contains(needle.as_ref()),
            "stdout missing {:?}\n{}",
            needle.as_ref(),
            self.describe()
        );
        self
    }

    /// Asserts that captured stderr contains `needle`.
    #[track_caller]
    pub fn stderr_contains(self, needle: impl AsRef<str>) -> Self {
        let stderr = String::from_utf8_lossy(&self.output.stderr).into_owned();
        assert!(
            stderr.contains(needle.as_ref()),
            "stderr missing {:?}\n{}",
            needle.as_ref(),
            self.describe()
        );
        self
    }

    /// Asserts that captured stdout is empty.
    #[track_caller]
    pub fn stdout_is_empty(self) -> Self {
        assert!(
            self.output.stdout.is_empty(),
            "expected empty stdout\n{}",
            self.describe()
        );
        self
    }
}
