//! Offline stand-in for `assert_cmd` (see `vendor/README.md`).
//!
//! Supports the `Command::cargo_bin("name")?.args(..).assert()` pattern with
//! exit-code assertions plus substring assertions on captured stdout/stderr.
//! Binaries are located the same way assert_cmd locates them: next to the
//! test executable's target directory.

use std::ffi::OsStr;
use std::path::PathBuf;
use std::process::Output;

/// Error returned when a requested cargo binary cannot be located.
#[derive(Debug)]
pub struct CargoError(String);

impl std::fmt::Display for CargoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CargoError {}

/// A `std::process::Command` wrapper with an `assert()` terminal.
pub struct Command {
    inner: std::process::Command,
}

impl Command {
    /// Locates the binary target `name` of the current package, as built by
    /// the enclosing `cargo test` invocation.
    pub fn cargo_bin(name: impl AsRef<str>) -> Result<Self, CargoError> {
        let name = name.as_ref();
        // Tests run from <target>/<profile>/deps/<test-bin>; package binaries
        // live one directory up.
        let exe = std::env::current_exe()
            .map_err(|e| CargoError(format!("cannot locate test executable: {e}")))?;
        let profile_dir = exe
            .parent() // deps/
            .and_then(|p| p.parent()) // <profile>/
            .map(PathBuf::from)
            .ok_or_else(|| CargoError("test executable has no target dir".into()))?;
        let mut candidate = profile_dir.join(name);
        candidate.set_extension(std::env::consts::EXE_EXTENSION);
        if !candidate.exists() {
            return Err(CargoError(format!(
                "no binary `{name}` at {}",
                candidate.display()
            )));
        }
        Ok(Command {
            inner: std::process::Command::new(candidate),
        })
    }

    /// Appends one argument.
    pub fn arg(mut self, arg: impl AsRef<OsStr>) -> Self {
        self.inner.arg(arg);
        self
    }

    /// Appends several arguments.
    pub fn args<I, S>(mut self, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<OsStr>,
    {
        self.inner.args(args);
        self
    }

    /// Runs the command, captures its output, and returns the assertion
    /// handle. Panics if the process cannot be spawned at all.
    pub fn assert(mut self) -> Assert {
        let output = self
            .inner
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {:?}: {e}", self.inner));
        Assert { output }
    }
}

/// Assertions over a finished process, mirroring `assert_cmd::assert::Assert`.
pub struct Assert {
    output: Output,
}

impl Assert {
    fn describe(&self) -> String {
        format!(
            "status: {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            self.output.status.code(),
            String::from_utf8_lossy(&self.output.stdout),
            String::from_utf8_lossy(&self.output.stderr),
        )
    }

    /// Asserts the process exited with status 0.
    #[track_caller]
    pub fn success(self) -> Self {
        assert!(
            self.output.status.success(),
            "expected success\n{}",
            self.describe()
        );
        self
    }

    /// Asserts the process exited with a non-zero status.
    #[track_caller]
    pub fn failure(self) -> Self {
        assert!(
            !self.output.status.success(),
            "expected failure\n{}",
            self.describe()
        );
        self
    }

    /// Asserts the exact exit code.
    #[track_caller]
    pub fn code(self, expected: i32) -> Self {
        assert_eq!(
            self.output.status.code(),
            Some(expected),
            "expected exit code {expected}\n{}",
            self.describe()
        );
        self
    }

    /// Asserts that captured stdout contains `needle`.
    #[track_caller]
    pub fn stdout_contains(self, needle: impl AsRef<str>) -> Self {
        let stdout = String::from_utf8_lossy(&self.output.stdout).into_owned();
        assert!(
            stdout.contains(needle.as_ref()),
            "stdout missing {:?}\n{}",
            needle.as_ref(),
            self.describe()
        );
        self
    }

    /// Asserts that captured stderr contains `needle`.
    #[track_caller]
    pub fn stderr_contains(self, needle: impl AsRef<str>) -> Self {
        let stderr = String::from_utf8_lossy(&self.output.stderr).into_owned();
        assert!(
            stderr.contains(needle.as_ref()),
            "stderr missing {:?}\n{}",
            needle.as_ref(),
            self.describe()
        );
        self
    }

    /// Asserts that captured stdout is empty.
    #[track_caller]
    pub fn stdout_is_empty(self) -> Self {
        assert!(
            self.output.stdout.is_empty(),
            "expected empty stdout\n{}",
            self.describe()
        );
        self
    }
}
