//! Offline stand-in for the `criterion` benchmark framework (see
//! `vendor/README.md`).
//!
//! Keeps the call-site API of criterion 0.5 that this workspace's benches
//! use — `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, warm_up_time, measurement_time,
//! bench_function, bench_with_input, finish}`, `BenchmarkId`, and
//! `Bencher::iter` — and performs a simple mean-of-N timing, printing one
//! `name ... <mean> ns/iter` line per benchmark.
//!
//! Like the real criterion, the generated `main` only runs benchmarks when
//! the `--bench` flag is present (which `cargo bench` passes). Under
//! `cargo test` the binary exits immediately, so benches are compile- and
//! link-checked without burning test time.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// `(benchmark name, mean ns/iter)` estimates collected over the run, for
/// the optional JSON report (see [`write_json_report`]).
static ESTIMATES: Mutex<Vec<(String, u128)>> = Mutex::new(Vec::new());

/// Entry point handed to each `criterion_group!` target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--quick` mirrors real criterion's quick mode: a minimal sample
        // count so CI can *execute* every bench (catching panics and API
        // rot) without paying for a measurement-grade run.
        let sample_size = if std::env::args().any(|a| a == "--quick") {
            2
        } else {
            10
        };
        Criterion { sample_size }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Times a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in always warms up once.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in times a fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Times one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op beyond dropping it, as in criterion).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter part.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter (the function part comes from the group).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; `iter` does the actual timing.
pub struct Bencher {
    samples: usize,
    /// Mean wall-clock time of one iteration, filled in by [`Bencher::iter`].
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, running one warm-up call plus `samples` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples,
        mean: None,
    };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => {
            println!("bench {name:<60} {:>12} ns/iter", mean.as_nanos());
            ESTIMATES
                .lock()
                .expect("estimate log poisoned")
                .push((name.to_string(), mean.as_nanos()));
        }
        None => println!("bench {name:<60} (no iter() call)"),
    }
}

/// Writes every estimate collected so far as a JSON object
/// (`{"benchmark name": mean_ns_per_iter, ...}`) to the path named by the
/// `CRITERION_JSON` environment variable; a no-op when it is unset.
/// [`criterion_main!`] calls this after the groups finish, which is how
/// `BENCH_baseline.json` files are produced:
///
/// ```sh
/// CRITERION_JSON=out.json cargo bench -p convoy-bench --bench micro_primitives
/// ```
pub fn write_json_report() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let estimates = ESTIMATES.lock().expect("estimate log poisoned");
    let mut out = String::from("{\n");
    for (i, (name, ns)) in estimates.iter().enumerate() {
        let comma = if i + 1 < estimates.len() { "," } else { "" };
        let escaped: String = name
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                '\n' => vec!['\\', 'n'],
                _ => vec![c],
            })
            .collect();
        out.push_str(&format!("  \"{escaped}\": {ns}{comma}\n"));
    }
    out.push_str("}\n");
    if let Err(err) = std::fs::write(&path, out) {
        eprintln!("failed to write {path}: {err}");
    } else {
        println!("wrote criterion estimates to {path}");
    }
}

/// True when the binary was invoked by `cargo bench` (criterion's contract:
/// benchmarks only run under `--bench`).
pub fn should_run_benches() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Mirrors `criterion::black_box` for callers that want it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into one group runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main`, running the groups only under `cargo bench`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::should_run_benches() {
                // Invoked by `cargo test`: benches are compile/link-checked,
                // not run. `cargo bench` passes --bench and runs them.
                return;
            }
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}
