//! Offline stand-in for the `criterion` benchmark framework (see
//! `vendor/README.md`).
//!
//! Keeps the call-site API of criterion 0.5 that this workspace's benches
//! use — `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, warm_up_time, measurement_time,
//! bench_function, bench_with_input, finish}`, `BenchmarkId`, and
//! `Bencher::iter` — and performs a simple mean-of-N timing, printing one
//! `name ... <mean> ns/iter` line per benchmark.
//!
//! Like the real criterion, the generated `main` only runs benchmarks when
//! the `--bench` flag is present (which `cargo bench` passes). Under
//! `cargo test` the binary exits immediately, so benches are compile- and
//! link-checked without burning test time.

use std::time::{Duration, Instant};

/// Entry point handed to each `criterion_group!` target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Times a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in always warms up once.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in times a fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Times one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op beyond dropping it, as in criterion).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter part.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter (the function part comes from the group).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; `iter` does the actual timing.
pub struct Bencher {
    samples: usize,
    /// Mean wall-clock time of one iteration, filled in by [`Bencher::iter`].
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, running one warm-up call plus `samples` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples,
        mean: None,
    };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!("bench {name:<60} {:>12} ns/iter", mean.as_nanos()),
        None => println!("bench {name:<60} (no iter() call)"),
    }
}

/// True when the binary was invoked by `cargo bench` (criterion's contract:
/// benchmarks only run under `--bench`).
pub fn should_run_benches() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Mirrors `criterion::black_box` for callers that want it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into one group runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main`, running the groups only under `cargo bench`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::should_run_benches() {
                // Invoked by `cargo test`: benches are compile/link-checked,
                // not run. `cargo bench` passes --bench and runs them.
                return;
            }
            $( $group(); )+
        }
    };
}
