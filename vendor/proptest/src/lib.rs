//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Keeps the call-site syntax this workspace's property tests use —
//! `proptest! { #![proptest_config(..)] #[test] fn name(x in strategy, ..) }`,
//! `prop_compose!` with dependent strategy groups, `prop_assert!`,
//! `prop_assert_eq!`, `collection::{vec, btree_set}`, ranges as strategies —
//! but replaces proptest's shrinking test runner with a plain seeded random
//! sweep: each property runs for `cases` deterministic samples (seeded from
//! the test's module path and name) and panics on the first failure. No
//! shrinking is performed; the panic message reports the failing values'
//! case index so a failure is reproducible.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies (re-exported for the generated code).
pub type TestRng = StdRng;

/// Runner configuration; only `cases` is honoured by the stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases (mirrors proptest's constructor).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Generates one value per sample; the stand-in for `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value. (The real trait produces a shrinkable value tree;
    /// the stand-in draws a plain value.)
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(f64, usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Support types for the generated code.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Wraps a sampling closure as a [`Strategy`]; produced by `prop_compose!`.
    pub struct FnStrategy<F>(pub F);

    impl<F, T> Strategy for FnStrategy<F>
    where
        F: Fn(&mut TestRng) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }
}

/// A collection size specification: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty collection size range");
        rng.gen_range(self.lo..self.hi)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{BTreeSet, SizeRange, Strategy, TestRng};

    /// Strategy for `Vec`s of values from `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet`s of *distinct* values from `element` with a
    /// size in `size`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Cap the draws so a too-narrow element domain fails loudly
            // instead of hanging.
            let max_attempts = target.saturating_mul(1000).max(1000);
            for _ in 0..max_attempts {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            assert!(
                out.len() >= target,
                "btree_set strategy could not draw {target} distinct values"
            );
            out
        }
    }
}

/// Error/result types of the runner (`proptest::test_runner`).
pub mod test_runner {
    /// A failed property case. The stand-in's assertion macros panic instead
    /// of returning this, but helpers written against the real API still
    /// type-check (`Result<(), TestCaseError>` + `?`).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Result alias mirroring `proptest::test_runner::TestCaseResult`.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// One-line import of everything the tests use.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest, ProptestConfig,
        Strategy,
    };
}

/// Deterministic per-test seed from the test's fully qualified name.
pub fn fnv1a_seed(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Creates the seeded RNG the generated test loop uses (kept here so using
/// crates do not need their own `rand` dependency).
pub fn new_rng(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// Asserts a condition inside a property (panics on failure, like a failing
/// case without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(x in strategy, ..) { body }` becomes
/// a `#[test]` running `cases` seeded samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+
    ) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let seed = $crate::fnv1a_seed(concat!(module_path!(), "::", stringify!($name)));
                let mut rng: $crate::TestRng = $crate::new_rng(seed);
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    // Both failure routes — a panicking `prop_assert!` and a
                    // helper returning `Err(TestCaseError)` via `?` — funnel
                    // through here so the failing case index and seed are
                    // always reported (there is no shrinking to point at the
                    // culprit otherwise).
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            let result: ::std::result::Result<
                                (),
                                $crate::test_runner::TestCaseError,
                            > = (|| {
                                $body
                                ::std::result::Result::Ok(())
                            })();
                            if let ::std::result::Result::Err(e) = result {
                                panic!("{e}");
                            }
                        }),
                    );
                    if let ::std::result::Result::Err(payload) = outcome {
                        eprintln!(
                            "property {} failed at case {case} of {} (seed {seed:#x})",
                            stringify!($name),
                            config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )+
    };
}

/// Composes strategies into a named strategy function, supporting the
/// dependent two-group form `fn f(args)(a in s1)(b in s2(a)) -> T { .. }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
        ($($a1:ident in $s1:expr),+ $(,)?)
        $(($($a2:ident in $s2:expr),+ $(,)?))?
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy(move |rng: &mut $crate::TestRng| {
                $(let $a1 = $crate::Strategy::sample(&($s1), rng);)+
                $($(let $a2 = $crate::Strategy::sample(&($s2), rng);)+)?
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_sorted_pair(offset: i64)(a in 0i64..100)(b in a..200) -> (i64, i64) {
            (a + offset, b + offset)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections_sample_within_bounds(
            x in -5.0f64..5.0,
            n in 1usize..4,
            v in crate::collection::vec(0u8..10, 2..6),
            s in crate::collection::btree_set(0i64..50, 3..6)) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..4).contains(&n));
            prop_assert!(v.len() >= 2 && v.len() < 6 && v.iter().all(|b| *b < 10));
            prop_assert!(s.len() >= 3 && s.len() < 6);
        }

        #[test]
        fn composed_strategies_respect_their_dependency(pair in arb_sorted_pair(7)) {
            let (a, b) = pair;
            prop_assert!(a <= b, "second draw starts at the first: {a} <= {b}");
            prop_assert!(a >= 7);
        }

        #[test]
        fn question_mark_propagates_test_case_errors(x in 0i64..10) {
            fn helper(x: i64) -> crate::test_runner::TestCaseResult {
                prop_assert!(x < 10);
                Ok(())
            }
            helper(x)?;
        }

        #[test]
        #[should_panic]
        fn failing_property_panics_with_case_context(x in 0i64..10) {
            prop_assert!(x > 100, "never holds, x = {x}");
        }
    }
}
