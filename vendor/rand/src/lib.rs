//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements exactly the surface this workspace calls — `rand::rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` over float and
//! integer ranges — on top of a self-contained xoshiro256++ generator seeded
//! via SplitMix64. Deterministic for a given seed, but the streams do *not*
//! match the real `rand::StdRng`.

use std::ops::{Range, RangeInclusive};

/// Core trait producing raw 64-bit output (stand-in for `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Stand-in for `rand::SeedableRng`; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "natural" domain by `Rng::gen`
/// (stand-in for `Standard: Distribution<T>`). For `f64` that is `[0, 1)`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range` (stand-in for `SampleRange<T>`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let unit = f64::sample(rng);
        lo + (hi - lo) * unit
    }
}

macro_rules! impl_int_ranges {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // The span is computed in the unsigned counterpart type so a
                // signed range wider than the type's positive max (e.g.
                // i32::MIN..i32::MAX) does not sign-extend into a bogus span.
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_ranges!(
    (usize, usize),
    (u64, u64),
    (u32, u32),
    (u16, u16),
    (u8, u8),
    (i64, u64),
    (i32, u32),
    (i16, u16),
    (i8, u8)
);

/// Stand-in for `rand::Rng`: convenience sampling methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of `T` from its natural domain (`[0, 1)` for `f64`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
            let m = rng.gen_range(0i64..=5);
            assert!((0..=5).contains(&m));
        }
    }

    #[test]
    fn gen_range_handles_full_width_signed_ranges() {
        // A signed range wider than the type's positive max must still stay
        // in bounds (regression: the span used to sign-extend).
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.gen_range(i32::MIN..i32::MAX);
            assert!((i32::MIN..i32::MAX).contains(&x));
            let y = rng.gen_range(i8::MIN..=i8::MAX);
            assert!((i8::MIN..=i8::MAX).contains(&y));
        }
        // With the inclusive full-width range, both extremes must be reachable.
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..20_000 {
            match rng.gen_range(i8::MIN..=i8::MAX) {
                i8::MIN => hit_lo = true,
                i8::MAX => hit_hi = true,
                _ => {}
            }
        }
        assert!(hit_lo && hit_hi, "extremes reachable: {hit_lo} {hit_hi}");
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
