//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Provides the two marker traits and, behind the `derive` feature, the
//! no-op derive macros. This is enough for `use serde::{Deserialize,
//! Serialize};` + `#[derive(Serialize, Deserialize)]` to compile; nothing in
//! this workspace performs actual serialization.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
