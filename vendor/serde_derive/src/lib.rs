//! No-op stand-ins for serde's derive macros (see `vendor/README.md`).
//!
//! The workspace only ever derives `Serialize`/`Deserialize` on plain data
//! types and never uses `#[serde(...)]` attributes or actual serialization,
//! so expanding to nothing is sufficient for the code to compile unchanged.

use proc_macro::TokenStream;

/// Derives nothing; accepts the same position as `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing; accepts the same position as `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
